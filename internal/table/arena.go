package table

import (
	"sync"
	"sync/atomic"
)

// Arena is a cross-iteration slab recycler for table backing storage.
//
// Every color-coding iteration allocates the same set of table slabs
// (dense data arrays, sparse arena blocks and index vectors, hash
// key/value arrays) and releases them at iteration end, so after one
// warm-up iteration the allocator sees pure churn. An Arena breaks that
// churn: Release hands slabs back to per-length free lists and the next
// iteration's constructors take them from there, making steady-state
// iterations slab-allocation-free (asserted by the dp package's
// allocation tests and visible as RunStats arena hit/miss counters).
//
// Slabs are keyed by exact length — the DP's node widths recur exactly
// across iterations, so after warm-up every Get hits. Returned slabs are
// NOT zeroed; each constructor re-initializes what it needs (dense
// clears, sparse fills its index with -1 and clears blocks on first use,
// hash rewrites keys). An Arena is safe for concurrent use; outer-mode
// iterations share the engine's arena.
//
// The zero value is ready to use. A nil *Arena is also valid everywhere
// and degrades to plain make() allocation.
type Arena struct {
	mu  sync.Mutex
	f64 map[int][][]float64
	i64 map[int][][]int64
	i32 map[int][][]int32
	i8  map[int][][]int8
	u64 map[int][][]uint64

	hits   atomic.Int64
	misses atomic.Int64
}

// arenaMaxPerClass bounds retained slabs per (type, length) class so a
// transient burst of concurrent iterations (outer mode) cannot pin its
// high-water mark forever.
const arenaMaxPerClass = 32

// Stats returns cumulative slab reuse counters: hits (slabs served from
// a free list) and misses (slabs freshly allocated). Put-backs are not
// counted.
func (a *Arena) Stats() (hits, misses int64) {
	if a == nil {
		return 0, 0
	}
	return a.hits.Load(), a.misses.Load()
}

// getSlab is the generic free-list pop. Go's type parameters keep the
// five typed pools from quintuplicating the logic.
func getSlab[T any](a *Arena, pool map[int][][]T, n int) ([]T, bool) {
	l := pool[n]
	if len(l) == 0 {
		return nil, false
	}
	s := l[len(l)-1]
	pool[n] = l[:len(l)-1]
	return s, true
}

func putSlab[T any](pool map[int][][]T, s []T) map[int][][]T {
	if pool == nil {
		pool = map[int][][]T{}
	}
	if len(pool[len(s)]) < arenaMaxPerClass {
		pool[len(s)] = append(pool[len(s)], s)
	}
	return pool
}

// F64 returns a float64 slab of length n (contents unspecified).
func (a *Arena) F64(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	a.mu.Lock()
	s, ok := getSlab(a, a.f64, n)
	a.mu.Unlock()
	if ok {
		a.hits.Add(1)
		return s
	}
	a.misses.Add(1)
	return make([]float64, n)
}

// PutF64 returns a slab to the arena. Nil arenas and nil slabs are no-ops.
func (a *Arena) PutF64(s []float64) {
	if a == nil || s == nil {
		return
	}
	a.mu.Lock()
	a.f64 = putSlab(a.f64, s)
	a.mu.Unlock()
}

// I64 returns an int64 slab of length n (contents unspecified).
func (a *Arena) I64(n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	a.mu.Lock()
	s, ok := getSlab(a, a.i64, n)
	a.mu.Unlock()
	if ok {
		a.hits.Add(1)
		return s
	}
	a.misses.Add(1)
	return make([]int64, n)
}

// PutI64 returns a slab to the arena.
func (a *Arena) PutI64(s []int64) {
	if a == nil || s == nil {
		return
	}
	a.mu.Lock()
	a.i64 = putSlab(a.i64, s)
	a.mu.Unlock()
}

// I32 returns an int32 slab of length n (contents unspecified).
func (a *Arena) I32(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	a.mu.Lock()
	s, ok := getSlab(a, a.i32, n)
	a.mu.Unlock()
	if ok {
		a.hits.Add(1)
		return s
	}
	a.misses.Add(1)
	return make([]int32, n)
}

// PutI32 returns a slab to the arena.
func (a *Arena) PutI32(s []int32) {
	if a == nil || s == nil {
		return
	}
	a.mu.Lock()
	a.i32 = putSlab(a.i32, s)
	a.mu.Unlock()
}

// I8 returns an int8 slab of length n (contents unspecified). The dp
// engine recycles per-iteration color vectors through this pool.
func (a *Arena) I8(n int) []int8 {
	if a == nil {
		return make([]int8, n)
	}
	a.mu.Lock()
	s, ok := getSlab(a, a.i8, n)
	a.mu.Unlock()
	if ok {
		a.hits.Add(1)
		return s
	}
	a.misses.Add(1)
	return make([]int8, n)
}

// PutI8 returns a slab to the arena.
func (a *Arena) PutI8(s []int8) {
	if a == nil || s == nil {
		return
	}
	a.mu.Lock()
	a.i8 = putSlab(a.i8, s)
	a.mu.Unlock()
}

// U64 returns a uint64 slab of length n (contents unspecified); the hash
// layout's presence bitsets live here.
func (a *Arena) U64(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	a.mu.Lock()
	s, ok := getSlab(a, a.u64, n)
	a.mu.Unlock()
	if ok {
		a.hits.Add(1)
		return s
	}
	a.misses.Add(1)
	return make([]uint64, n)
}

// PutU64 returns a slab to the arena.
func (a *Arena) PutU64(s []uint64) {
	if a == nil || s == nil {
		return
	}
	a.mu.Lock()
	a.u64 = putSlab(a.u64, s)
	a.mu.Unlock()
}
