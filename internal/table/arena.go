package table

import (
	"sync"
	"sync/atomic"
)

// Arena is a cross-iteration slab recycler for table backing storage.
//
// Every color-coding iteration allocates the same set of table slabs
// (dense data arrays, sparse arena blocks and index vectors, hash
// key/value arrays) and releases them at iteration end, so after one
// warm-up iteration the allocator sees pure churn. An Arena breaks that
// churn: Release hands slabs back to per-length free lists and the next
// iteration's constructors take them from there, making steady-state
// iterations slab-allocation-free (asserted by the dp package's
// allocation tests and visible as RunStats arena hit/miss counters).
//
// Slabs are keyed by exact length — the DP's node widths recur exactly
// across iterations, so after warm-up every Get hits. Returned slabs are
// NOT zeroed; each constructor re-initializes what it needs (dense
// clears, sparse fills its index with -1 and clears blocks on first use,
// hash rewrites keys). An Arena is safe for concurrent use; outer-mode
// iterations share the engine's arena.
//
// The zero value is ready to use. A nil *Arena is also valid everywhere
// and degrades to plain make() allocation.
type Arena struct {
	mu  sync.Mutex
	f64 map[int][][]float64
	i64 map[int][][]int64
	i32 map[int][][]int32
	i8  map[int][][]int8
	u64 map[int][][]uint64
	bts map[int][][]byte

	hits   atomic.Int64
	misses atomic.Int64

	// spill is the optional file-backed slab source installed by
	// SetSpill; nil means every miss allocates on the Go heap.
	spill *spillRegion
	// spillMin is the smallest slab (in bytes) routed to the spill
	// region; tiny slabs stay on the heap where they are cheap.
	spillMin int64
}

// arenaMaxPerClass bounds retained slabs per (type, length) class so a
// transient burst of concurrent iterations (outer mode) cannot pin its
// high-water mark forever.
const arenaMaxPerClass = 32

// Stats returns cumulative slab reuse counters: hits (slabs served from
// a free list) and misses (slabs freshly allocated). Put-backs are not
// counted.
func (a *Arena) Stats() (hits, misses int64) {
	if a == nil {
		return 0, 0
	}
	return a.hits.Load(), a.misses.Load()
}

// getSlab is the generic free-list pop. Go's type parameters keep the
// five typed pools from quintuplicating the logic.
func getSlab[T any](a *Arena, pool map[int][][]T, n int) ([]T, bool) {
	l := pool[n]
	if len(l) == 0 {
		return nil, false
	}
	s := l[len(l)-1]
	pool[n] = l[:len(l)-1]
	return s, true
}

func putSlab[T any](pool map[int][][]T, s []T) map[int][][]T {
	if pool == nil {
		pool = map[int][][]T{}
	}
	if len(pool[len(s)]) < arenaMaxPerClass {
		pool[len(s)] = append(pool[len(s)], s)
	}
	return pool
}

// SetSpill installs a file-backed spill source for large slabs: once
// set, slab allocations of at least min bytes are served from mmapped
// unlinked temp files instead of the Go heap, and returned slabs have
// their pages advised away (MADV_DONTNEED), so the table working set
// above the threshold is reclaimable by the kernel under memory
// pressure rather than pinned in RSS. On platforms without mmap
// support (or when the temp dir is unwritable) spill allocation
// degrades silently to the heap. min <= 0 picks a default.
func (a *Arena) SetSpill(min int64) {
	if a == nil {
		return
	}
	if min <= 0 {
		min = defaultSpillMin
	}
	a.mu.Lock()
	if a.spill == nil {
		a.spill = newSpillRegion()
	}
	a.spillMin = min
	a.mu.Unlock()
}

// SpillStats returns the number of live spill-backed slabs and their
// total mapped bytes (zero when spill is not enabled).
func (a *Arena) SpillStats() (slabs int, bytes int64) {
	if a == nil {
		return 0, 0
	}
	a.mu.Lock()
	sp := a.spill
	a.mu.Unlock()
	if sp == nil {
		return 0, 0
	}
	return sp.stats()
}

// spillFor returns the spill region when a fresh slab of nbytes should
// be file-backed rather than heap-allocated.
func (a *Arena) spillFor(nbytes int64) *spillRegion {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	sp := a.spill
	min := a.spillMin
	a.mu.Unlock()
	if sp == nil || nbytes < min {
		return nil
	}
	return sp
}

// F64 returns a float64 slab of length n (contents unspecified).
func (a *Arena) F64(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	a.mu.Lock()
	s, ok := getSlab(a, a.f64, n)
	a.mu.Unlock()
	if ok {
		a.hits.Add(1)
		return s
	}
	a.misses.Add(1)
	if sp := a.spillFor(int64(n) * 8); sp != nil {
		if b := sp.alloc(int64(n) * 8); b != nil {
			return bytesToF64(b, n)
		}
	}
	return make([]float64, n)
}

// PutF64 returns a slab to the arena. Nil arenas and nil slabs are no-ops.
func (a *Arena) PutF64(s []float64) {
	if a == nil || s == nil {
		return
	}
	spillOwned := a.adviseIfSpill(f64Ptr(s), int64(len(s))*8)
	a.mu.Lock()
	a.f64 = putSlabMaybeUncapped(a.f64, s, spillOwned)
	a.mu.Unlock()
}

// adviseIfSpill reports whether the slab at ptr is spill-backed, and if
// so releases its resident pages.
func (a *Arena) adviseIfSpill(ptr uintptr, nbytes int64) bool {
	a.mu.Lock()
	sp := a.spill
	a.mu.Unlock()
	if sp == nil {
		return false
	}
	return sp.release(ptr, nbytes)
}

// putSlabMaybeUncapped is putSlab, but spill-backed slabs are always
// retained: dropping one would leak its file mapping, and their page
// cost is already released.
func putSlabMaybeUncapped[T any](pool map[int][][]T, s []T, uncapped bool) map[int][][]T {
	if !uncapped {
		return putSlab(pool, s)
	}
	if pool == nil {
		pool = map[int][][]T{}
	}
	pool[len(s)] = append(pool[len(s)], s)
	return pool
}

// I64 returns an int64 slab of length n (contents unspecified).
func (a *Arena) I64(n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	a.mu.Lock()
	s, ok := getSlab(a, a.i64, n)
	a.mu.Unlock()
	if ok {
		a.hits.Add(1)
		return s
	}
	a.misses.Add(1)
	if sp := a.spillFor(int64(n) * 8); sp != nil {
		if b := sp.alloc(int64(n) * 8); b != nil {
			return bytesToI64(b, n)
		}
	}
	return make([]int64, n)
}

// PutI64 returns a slab to the arena.
func (a *Arena) PutI64(s []int64) {
	if a == nil || s == nil {
		return
	}
	spillOwned := a.adviseIfSpill(i64Ptr(s), int64(len(s))*8)
	a.mu.Lock()
	a.i64 = putSlabMaybeUncapped(a.i64, s, spillOwned)
	a.mu.Unlock()
}

// I32 returns an int32 slab of length n (contents unspecified).
func (a *Arena) I32(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	a.mu.Lock()
	s, ok := getSlab(a, a.i32, n)
	a.mu.Unlock()
	if ok {
		a.hits.Add(1)
		return s
	}
	a.misses.Add(1)
	if sp := a.spillFor(int64(n) * 4); sp != nil {
		if b := sp.alloc(int64(n) * 4); b != nil {
			return bytesToI32(b, n)
		}
	}
	return make([]int32, n)
}

// PutI32 returns a slab to the arena.
func (a *Arena) PutI32(s []int32) {
	if a == nil || s == nil {
		return
	}
	spillOwned := a.adviseIfSpill(i32Ptr(s), int64(len(s))*4)
	a.mu.Lock()
	a.i32 = putSlabMaybeUncapped(a.i32, s, spillOwned)
	a.mu.Unlock()
}

// I8 returns an int8 slab of length n (contents unspecified). The dp
// engine recycles per-iteration color vectors through this pool.
func (a *Arena) I8(n int) []int8 {
	if a == nil {
		return make([]int8, n)
	}
	a.mu.Lock()
	s, ok := getSlab(a, a.i8, n)
	a.mu.Unlock()
	if ok {
		a.hits.Add(1)
		return s
	}
	a.misses.Add(1)
	return make([]int8, n)
}

// PutI8 returns a slab to the arena.
func (a *Arena) PutI8(s []int8) {
	if a == nil || s == nil {
		return
	}
	a.mu.Lock()
	a.i8 = putSlab(a.i8, s)
	a.mu.Unlock()
}

// U64 returns a uint64 slab of length n (contents unspecified); the hash
// layout's presence bitsets live here.
func (a *Arena) U64(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	a.mu.Lock()
	s, ok := getSlab(a, a.u64, n)
	a.mu.Unlock()
	if ok {
		a.hits.Add(1)
		return s
	}
	a.misses.Add(1)
	return make([]uint64, n)
}

// PutU64 returns a slab to the arena.
func (a *Arena) PutU64(s []uint64) {
	if a == nil || s == nil {
		return
	}
	a.mu.Lock()
	a.u64 = putSlab(a.u64, s)
	a.mu.Unlock()
}

// B returns a byte slab of length n (contents unspecified); the
// succinct layout's compressed row blocks and encode scratch live here.
func (a *Arena) B(n int) []byte {
	if a == nil {
		return make([]byte, n)
	}
	a.mu.Lock()
	s, ok := getSlab(a, a.bts, n)
	a.mu.Unlock()
	if ok {
		a.hits.Add(1)
		return s
	}
	a.misses.Add(1)
	if sp := a.spillFor(int64(n)); sp != nil {
		if b := sp.alloc(int64(n)); b != nil {
			return b
		}
	}
	return make([]byte, n)
}

// PutB returns a byte slab to the arena.
func (a *Arena) PutB(s []byte) {
	if a == nil || s == nil {
		return
	}
	spillOwned := a.adviseIfSpill(bPtr(s), int64(len(s)))
	a.mu.Lock()
	a.bts = putSlabMaybeUncapped(a.bts, s, spillOwned)
	a.mu.Unlock()
}
