package table

import (
	"sync"
	"unsafe"
)

// defaultSpillMin is the smallest slab routed to the spill region when
// SetSpill is called without an explicit threshold: small slabs (index
// vectors of tiny graphs, scratch rows) are cheap on the heap, while
// anything at slab-block scale and above dominates RSS.
const defaultSpillMin = 1 << 20

// spillRegion serves large table slabs from mmapped unlinked temp
// files (MAP_SHARED) instead of the Go heap. File-backed dirty pages
// are writable back to disk, so under memory pressure the kernel can
// evict them — which is what bounds peak RSS independent of table
// size. Returned slabs are advised away (MADV_DONTNEED) immediately,
// dropping their residency without unmapping; the mapping itself is
// recycled through the arena free lists like any other slab.
//
// Each slab is its own mapping. Mappings live until process exit (the
// backing files are unlinked at creation, so no cleanup is required);
// the arena never drops a spill-backed slab from its free lists.
type spillRegion struct {
	mu sync.Mutex
	// owned maps each mapping's base pointer to the original mapped
	// slice (kept whole so release can madvise it without an
	// uintptr->pointer round trip); guarded by mu.
	owned  map[uintptr][]byte
	mapped int64 // guarded by mu
	broken bool  // mmap failed once: stop trying, guarded by mu
}

func newSpillRegion() *spillRegion {
	return &spillRegion{owned: map[uintptr][]byte{}}
}

// alloc returns a file-backed slab of nbytes, or nil when the platform
// (or the temp dir) cannot provide one — the caller falls back to the
// heap.
func (sp *spillRegion) alloc(nbytes int64) []byte {
	sp.mu.Lock()
	if sp.broken {
		sp.mu.Unlock()
		return nil
	}
	sp.mu.Unlock()
	b, err := mmapFileBacked(nbytes)
	if err != nil {
		sp.mu.Lock()
		sp.broken = true
		sp.mu.Unlock()
		return nil
	}
	sp.mu.Lock()
	sp.owned[bPtr(b)] = b
	sp.mapped += nbytes
	sp.mu.Unlock()
	return b
}

// release reports whether the slab at ptr is spill-backed, and if so
// drops its resident pages (contents are unspecified after Put, so
// nothing is lost).
func (sp *spillRegion) release(ptr uintptr, nbytes int64) bool {
	sp.mu.Lock()
	b, ok := sp.owned[ptr]
	sp.mu.Unlock()
	if !ok || int64(len(b)) != nbytes {
		return ok
	}
	adviseDontNeed(b)
	return true
}

func (sp *spillRegion) stats() (slabs int, bytes int64) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.owned), sp.mapped
}

// Pointer and reinterpretation helpers for handing typed slabs out of
// byte mappings. Mappings are page-aligned, so every element type here
// is safely aligned.

func bPtr(s []byte) uintptr      { return uintptr(unsafe.Pointer(unsafe.SliceData(s))) }
func f64Ptr(s []float64) uintptr { return uintptr(unsafe.Pointer(unsafe.SliceData(s))) }
func i64Ptr(s []int64) uintptr   { return uintptr(unsafe.Pointer(unsafe.SliceData(s))) }
func i32Ptr(s []int32) uintptr   { return uintptr(unsafe.Pointer(unsafe.SliceData(s))) }

func bytesToF64(b []byte, n int) []float64 {
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), n)
}

func bytesToI64(b []byte, n int) []int64 {
	return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(b))), n)
}

func bytesToI32(b []byte, n int) []int32 {
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), n)
}
