//go:build !linux

package table

import "errors"

// mmapFileBacked is unavailable off linux; the arena falls back to
// heap allocation (SetSpill becomes a no-op after the first miss).
func mmapFileBacked(nbytes int64) ([]byte, error) {
	return nil, errors.New("table: file-backed spill is only supported on linux")
}

func adviseDontNeed(b []byte) {}
