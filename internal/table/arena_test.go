package table

import (
	"math/rand"
	"runtime"
	"testing"
)

// TestArenaRecycling checks the free-list mechanics: a returned slab of
// the same length is handed back (hit), different lengths are separate
// classes, and the per-class cap bounds retention.
func TestArenaRecycling(t *testing.T) {
	a := &Arena{}
	s1 := a.F64(100)
	if h, m := a.Stats(); h != 0 || m != 1 {
		t.Fatalf("fresh get: hits=%d misses=%d", h, m)
	}
	a.PutF64(s1)
	s2 := a.F64(100)
	if h, _ := a.Stats(); h != 1 {
		t.Fatalf("recycled get not counted as hit")
	}
	if &s1[0] != &s2[0] {
		t.Fatal("recycled slab is not the same backing array")
	}
	// A different length is a different class.
	_ = a.F64(200)
	if h, m := a.Stats(); h != 1 || m != 2 {
		t.Fatalf("cross-class get: hits=%d misses=%d", h, m)
	}
	// Typed pools are independent.
	i := a.I32(100)
	a.PutI32(i)
	if got := a.I32(100); &got[0] != &i[0] {
		t.Fatal("I32 slab not recycled")
	}
	c := a.I8(64)
	a.PutI8(c)
	if got := a.I8(64); &got[0] != &c[0] {
		t.Fatal("I8 slab not recycled")
	}
	u := a.U64(16)
	a.PutU64(u)
	if got := a.U64(16); &got[0] != &u[0] {
		t.Fatal("U64 slab not recycled")
	}
	k := a.I64(32)
	a.PutI64(k)
	if got := a.I64(32); &got[0] != &k[0] {
		t.Fatal("I64 slab not recycled")
	}
}

// TestArenaNilSafe checks that a nil arena degrades to plain allocation
// (the no-engine construction paths).
func TestArenaNilSafe(t *testing.T) {
	var a *Arena
	if s := a.F64(10); len(s) != 10 {
		t.Fatal("nil arena F64")
	}
	a.PutF64(make([]float64, 10)) // must not panic
	if s := a.I8(5); len(s) != 5 {
		t.Fatal("nil arena I8")
	}
	a.PutI8(nil)
}

// TestArenaCap checks that each class retains at most arenaMaxPerClass
// slabs so pathological width churn cannot hoard memory.
func TestArenaCap(t *testing.T) {
	a := &Arena{}
	slabs := make([][]float64, arenaMaxPerClass+10)
	for i := range slabs {
		slabs[i] = make([]float64, 7)
	}
	for _, s := range slabs {
		a.PutF64(s)
	}
	hitsBefore, _ := a.Stats()
	for i := 0; i < arenaMaxPerClass; i++ {
		a.F64(7)
	}
	h, _ := a.Stats()
	if h-hitsBefore != arenaMaxPerClass {
		t.Fatalf("expected %d retained slabs, got %d hits", arenaMaxPerClass, h-hitsBefore)
	}
	a.F64(7) // the extras beyond the cap were dropped
	if h2, _ := a.Stats(); h2 != h {
		t.Fatalf("class retained more than %d slabs", arenaMaxPerClass)
	}
}

// TestMultiLaneSemantics checks the lane-strided Multi table: cells land
// at ci·L + lane, per-lane totals separate, GatherColors folds the
// per-vertex colored cells, and rows materialize on the hash layout.
func TestMultiLaneSemantics(t *testing.T) {
	for _, kind := range []Kind{Naive, Lazy, Hash} {
		const n, numSets, L = 10, 4, 3
		m := NewMulti(kind, n, numSets, L, nil)
		if m.NumSets() != numSets || m.Lanes() != L || m.Width() != numSets*L {
			t.Fatalf("%v: shape mismatch", kind)
		}
		m.Set(2, 1, 0, 5)
		m.Set(2, 1, 2, 7)
		m.Set(3, 0, 1, 11)
		if got := m.Get(2, 1, 0); got != 5 {
			t.Fatalf("%v: Get lane 0 = %v", kind, got)
		}
		if got := m.Get(2, 1, 1); got != 0 {
			t.Fatalf("%v: untouched lane = %v, want 0", kind, got)
		}
		if got := m.Get(2, 1, 2); got != 7 {
			t.Fatalf("%v: Get lane 2 = %v", kind, got)
		}
		totals := make([]float64, L)
		m.Totals(totals)
		if totals[0] != 5 || totals[1] != 11 || totals[2] != 7 {
			t.Fatalf("%v: totals = %v", kind, totals)
		}
		// MaterializeRow returns the full lane-strided row.
		dst := make([]float64, numSets*L)
		row := m.MaterializeRow(2, dst)
		if row[1*L+0] != 5 || row[1*L+2] != 7 {
			t.Fatalf("%v: materialized row %v", kind, row)
		}
		// AccumulateRows sums lane rows of several vertices.
		acc := make([]float64, numSets*L)
		m.AccumulateRows([]int32{2, 3, 4}, acc)
		if acc[1*L+0] != 5 || acc[0*L+1] != 11 || acc[1*L+2] != 7 {
			t.Fatalf("%v: accumulate %v", kind, acc)
		}
		// GatherColors: lane-strided per-vertex colors; vertex 2 has
		// color 1 in every lane, vertex 3 color 0.
		colors := make([]int8, n*L)
		for j := 0; j < L; j++ {
			colors[2*L+j] = 1
			colors[3*L+j] = 0
		}
		gather := make([]float64, numSets*L)
		m.GatherColors([]int32{2, 3}, colors, gather)
		if gather[1*L+0] != 5 || gather[1*L+2] != 7 || gather[0*L+1] != 11 {
			t.Fatalf("%v: gather %v", kind, gather)
		}
		m.Release()
	}
}

// TestMultiMergeFrom checks the hash staging merge used by the batched
// inner-parallel path. Staging tables hold DISJOINT vertex shards (each
// vertex is owned by one worker), so the merge moves rows without
// combining cells.
func TestMultiMergeFrom(t *testing.T) {
	const n, numSets, L = 8, 3, 2
	dst := NewMulti(Hash, n, numSets, L, nil)
	src := NewMulti(Hash, n, numSets, L, nil)
	dst.Set(1, 0, 0, 2)
	src.Set(4, 2, 1, 9)
	src.Set(4, 1, 0, 6)
	dst.MergeFrom(src)
	if got := dst.Get(1, 0, 0); got != 2 {
		t.Fatalf("pre-existing cell = %v, want 2", got)
	}
	if got := dst.Get(4, 2, 1); got != 9 {
		t.Fatalf("merged cell = %v, want 9", got)
	}
	if got := dst.Get(4, 1, 0); got != 6 {
		t.Fatalf("merged cell = %v, want 6", got)
	}
	if !dst.Has(4) {
		t.Fatal("presence not merged")
	}
	if !dst.IsHash() {
		t.Fatal("IsHash false for hash Multi")
	}
	src.Release()
	dst.Release()
}

// TestArenaStress hammers mixed get/put traffic to exercise class
// bookkeeping under interleaving (run with -race in the race lane).
func TestArenaStress(t *testing.T) {
	a := &Arena{}
	rng := rand.New(rand.NewSource(1))
	live := make([][]float64, 0, 64)
	for i := 0; i < 10_000; i++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			j := rng.Intn(len(live))
			a.PutF64(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			n := 1 << rng.Intn(8)
			live = append(live, a.F64(n))
		}
	}
	h, m := a.Stats()
	if h+m < 5000 {
		t.Fatalf("stress accounting implausible: hits=%d misses=%d", h, m)
	}
}

// TestArenaSpill checks the file-backed spill source end to end: slabs
// at or above the threshold come from mmapped regions and are tracked
// by SpillStats, sub-threshold slabs stay on the heap, returned spill
// slabs keep their mapping (recycled through the free lists, resident
// pages advised away), and writes to a spilled slab actually stick.
func TestArenaSpill(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("spill mappings are linux-only")
	}
	const min = 1 << 16
	a := &Arena{}
	a.SetSpill(min)

	small := a.F64(min / 16) // well under the byte threshold
	if slabs, bytes := a.SpillStats(); slabs != 0 || bytes != 0 {
		t.Fatalf("small slab spilled: %d slabs, %d bytes", slabs, bytes)
	}
	a.PutF64(small)

	big := a.F64(min / 8) // exactly min bytes
	if slabs, bytes := a.SpillStats(); slabs != 1 || bytes != min {
		t.Fatalf("big slab not spilled: %d slabs, %d bytes", slabs, bytes)
	}
	for i := range big {
		big[i] = float64(i)
	}
	for i := range big {
		if big[i] != float64(i) {
			t.Fatalf("spilled slab dropped a write at %d", i)
		}
	}

	// Returning the slab advises its pages away but keeps the mapping:
	// the next same-size request recycles it instead of mapping again.
	a.PutF64(big)
	if slabs, _ := a.SpillStats(); slabs != 1 {
		t.Fatalf("mapping dropped on Put: %d slabs", slabs)
	}
	again := a.F64(min / 8)
	if &again[0] != &big[0] {
		t.Fatal("spilled slab not recycled through the free list")
	}
	if slabs, bytes := a.SpillStats(); slabs != 1 || bytes != min {
		t.Fatalf("recycled get remapped: %d slabs, %d bytes", slabs, bytes)
	}
	// Contents are unspecified after Put/re-get (pages were advised
	// away), but the slab must be writable and zero-filled pages are
	// fine — touch it to prove the mapping is still valid.
	again[0], again[len(again)-1] = 1, 2
	if again[0] != 1 || again[len(again)-1] != 2 {
		t.Fatal("recycled spill slab not writable")
	}

	// Typed variants share the same region.
	k := a.I64(min / 8)
	vs := a.I32(min / 4)
	bs := a.B(min)
	if slabs, bytes := a.SpillStats(); slabs != 4 || bytes != 4*min {
		t.Fatalf("typed spills not tracked: %d slabs, %d bytes", slabs, bytes)
	}
	a.PutI64(k)
	a.PutI32(vs)
	a.PutB(bs)
}
