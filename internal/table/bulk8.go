package table

// 8-wide bounds-check-eliminated bulk loops shared by the layouts' bulk
// primitives (AccumulateRows and the tiled range variants). The batched
// DP's inner dimension is a lane-widened float64 row (width NumSets × B),
// and the scalar Go backend retires about one bounds-checked add per
// cycle; the slice-to-array-pointer form below keeps eight independent
// adds in flight with no per-element bounds checks. This file must stay
// free of IsInBounds checks — `make check-bce` builds it with
// -gcflags=-d=ssa/check_bce and fails if any reappear.

// addTo adds src into dst element-wise over min(len(dst), len(src)).
// //fascia:hotpath holds it to zero heap allocation — hotalloc checks
// the static rules, `make check-escape` checks the compiler's verdict.
//
//fascia:hotpath
func addTo(dst, src []float64) {
	if len(src) > len(dst) {
		src = src[:len(dst)]
	}
	for len(src) >= 8 && len(dst) >= 8 {
		d := (*[8]float64)(dst)
		s := (*[8]float64)(src)
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
		d[4] += s[4]
		d[5] += s[5]
		d[6] += s[6]
		d[7] += s[7]
		dst = dst[8:]
		src = src[8:]
	}
	dst = dst[:len(src)]
	for i, x := range src {
		dst[i] += x
	}
}
