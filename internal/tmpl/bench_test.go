package tmpl

import "testing"

func BenchmarkAllTrees12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		AllTrees(12)
	}
}

func BenchmarkCanonicalFree(b *testing.B) {
	t := MustNamed("U12-2")
	for i := 0; i < b.N; i++ {
		t.CanonicalFree()
	}
}

func BenchmarkAutomorphisms(b *testing.B) {
	t := MustNamed("U12-2")
	for i := 0; i < b.N; i++ {
		t.Automorphisms()
	}
}
