package tmpl

import (
	"fmt"
	"math/bits"
	"sort"
)

// This file builds nice tree decompositions of templates, the structure
// driving the beyond-trees DP (Chakaravarthy et al., arXiv:1602.04478):
// the colorful count of a non-tree template is computed bottom-up over
// decomposition bags instead of partition-tree subtemplates. Bags are
// found by greedy minimum-degree elimination, which is exact for
// treewidth <= 2 (a connected graph has treewidth <= 2 iff it can be
// reduced by repeatedly removing a vertex of degree <= 2 with fill-in)
// and recognizes K4 (treewidth 3) exactly as well — enough for every
// template the motif zoo or cycle/clique notation can produce within
// the supported width.

// MaxBagVerts is the largest bag the decomposition (and the bag DP built
// on it) supports: width 3, i.e. treewidth <= 3 via the greedy bound.
// Treewidth-2 templates (cycles, chordal cycles, tails) are the design
// center; width-3 bags additionally admit K4 so the whole size-4 zoo
// runs through one DP.
const MaxBagVerts = 4

// BagKind enumerates the node kinds of a nice tree decomposition.
type BagKind int

const (
	// BagLeaf is an empty bag with no children.
	BagLeaf BagKind = iota
	// BagIntroduce adds one template vertex to its child's bag.
	BagIntroduce
	// BagForget removes one template vertex from its child's bag.
	BagForget
	// BagJoin merges two children holding identical bags.
	BagJoin
)

func (k BagKind) String() string {
	switch k {
	case BagLeaf:
		return "leaf"
	case BagIntroduce:
		return "introduce"
	case BagForget:
		return "forget"
	case BagJoin:
		return "join"
	default:
		return fmt.Sprintf("BagKind(%d)", int(k))
	}
}

// Bag is one node of a nice tree decomposition. Verts lists the bag's
// template vertices ascending AFTER the node's operation; Vertex is the
// vertex introduced or forgotten (unused for leaf/join nodes).
type Bag struct {
	Kind   BagKind
	Vertex int
	Verts  []int
	Left   *Bag // only child of introduce/forget; first child of join
	Right  *Bag // second child of join, nil otherwise
}

// Decomposition is a nice tree decomposition of a template: the root is
// an empty bag (every vertex forgotten), every template vertex is
// introduced at least once, every template edge is covered by some bag,
// and the bags containing any fixed vertex form a connected subtree.
type Decomposition struct {
	Root *Bag
	// Width is the decomposition width: max bag size - 1.
	Width int
	// Order lists every bag in post-order (children strictly before
	// parents), the evaluation order of the bag DP.
	Order []*Bag
}

// Decompose builds a nice tree decomposition of the template by greedy
// minimum-degree elimination. Templates whose greedy width exceeds
// MaxBagVerts-1 are rejected with a clear error; for treewidth <= 2 the
// greedy bound is exact, so every cycle, chordal cycle, and tailed
// template is accepted, as is K4 (width 3). Tree templates decompose at
// width 1.
func Decompose(t *Template) (*Decomposition, error) {
	k := t.K()
	// Fill-graph adjacency as bitmasks (k <= 64 by construction).
	nb := make([]uint64, k)
	for v := 0; v < k; v++ {
		for _, u := range t.adj[v] {
			nb[v] |= 1 << uint(u)
		}
	}
	// elimBag[i]: {v_i} ∪ N(v_i) at elimination time; elimPos[v]: v's
	// elimination step. Parent of step i is the step of the first-
	// eliminated vertex of N(v_i) — eliminating v_i turns N(v_i) into a
	// fill clique, so N(v_i) is contained in that vertex's bag and the
	// bags form a valid tree decomposition.
	elimBag := make([]uint64, k)
	elimOrder := make([]int, 0, k)
	elimPos := make([]int, k)
	remaining := uint64(1)<<uint(k) - 1
	if k == 64 {
		remaining = ^uint64(0)
	}
	for step := 0; step < k; step++ {
		best, bestDeg := -1, k+1
		for v := 0; v < k; v++ {
			if remaining&(1<<uint(v)) == 0 {
				continue
			}
			if d := bits.OnesCount64(nb[v]); d < bestDeg {
				best, bestDeg = v, d
			}
		}
		if bestDeg > MaxBagVerts-1 {
			return nil, fmt.Errorf("tmpl: template %s has treewidth > %d (greedy elimination stuck at degree %d); only templates of treewidth <= 2 plus K4 are supported",
				t.name, MaxBagVerts-1, bestDeg)
		}
		elimBag[step] = nb[best] | 1<<uint(best)
		elimPos[best] = step
		elimOrder = append(elimOrder, best)
		remaining &^= 1 << uint(best)
		// Remove best and add fill edges among its neighbors.
		rest := nb[best]
		for m := rest; m != 0; m &= m - 1 {
			u := bits.TrailingZeros64(m)
			nb[u] |= rest &^ (1 << uint(u))
			nb[u] &^= 1 << uint(best)
			nb[u] &^= 1 << uint(u)
		}
	}
	// Elimination-forest children: step i's parent is the step of the
	// first-eliminated neighbor; the final step (empty neighborhood) is
	// the root. Connected templates yield exactly one root.
	children := make([][]int, k)
	rootStep := -1
	for step := 0; step < k; step++ {
		rest := elimBag[step] &^ (1 << uint(elimOrder[step]))
		if rest == 0 {
			rootStep = step
			continue
		}
		parent := k
		for m := rest; m != 0; m &= m - 1 {
			if p := elimPos[bits.TrailingZeros64(m)]; p < parent {
				parent = p
			}
		}
		children[parent] = append(children[parent], step)
	}
	if rootStep < 0 {
		return nil, fmt.Errorf("tmpl: template %s produced no elimination root (disconnected?)", t.name)
	}

	b := &decompBuilder{elimBag: elimBag, elimOrder: elimOrder, children: children}
	top := b.nice(rootStep)
	// Forget the root bag down to the empty root.
	for _, v := range bagVerts(elimBag[rootStep]) {
		top = &Bag{Kind: BagForget, Vertex: v, Verts: removeVert(top.Verts, v), Left: top}
	}
	d := &Decomposition{Root: top}
	var walk func(*Bag)
	var maxBag int
	walk = func(bg *Bag) {
		if bg.Left != nil {
			walk(bg.Left)
		}
		if bg.Right != nil {
			walk(bg.Right)
		}
		if len(bg.Verts) > maxBag {
			maxBag = len(bg.Verts)
		}
		d.Order = append(d.Order, bg)
	}
	walk(top)
	d.Width = maxBag - 1
	return d, nil
}

type decompBuilder struct {
	elimBag   []uint64
	elimOrder []int
	children  [][]int
}

// nice builds the nice-decomposition subtree for elimination step i,
// returning a node whose bag is exactly elimBag[i].
func (b *decompBuilder) nice(step int) *Bag {
	target := bagVerts(b.elimBag[step])
	var cur *Bag
	for _, ch := range b.children[step] {
		sub := b.nice(ch)
		// Adapt the child's bag to this step's bag: forget the child's
		// eliminated vertex (the only vertex not in the parent bag), then
		// introduce this bag's missing vertices ascending.
		elim := b.elimOrder[ch]
		sub = &Bag{Kind: BagForget, Vertex: elim, Verts: removeVert(sub.Verts, elim), Left: sub}
		sub = introduceUpTo(sub, target)
		if cur == nil {
			cur = sub
		} else {
			cur = &Bag{Kind: BagJoin, Verts: target, Left: cur, Right: sub}
		}
	}
	if cur == nil {
		cur = introduceUpTo(&Bag{Kind: BagLeaf}, target)
	}
	return cur
}

// introduceUpTo wraps cur in introduce nodes until its bag equals target
// (cur's bag must be a subset of target).
func introduceUpTo(cur *Bag, target []int) *Bag {
	have := map[int]bool{}
	for _, v := range cur.Verts {
		have[v] = true
	}
	verts := append([]int(nil), cur.Verts...)
	for _, v := range target {
		if have[v] {
			continue
		}
		verts = insertVert(verts, v)
		cur = &Bag{Kind: BagIntroduce, Vertex: v, Verts: verts, Left: cur}
		verts = cur.Verts
	}
	return cur
}

// bagVerts expands a bag bitmask into an ascending vertex list.
func bagVerts(mask uint64) []int {
	out := make([]int, 0, bits.OnesCount64(mask))
	for m := mask; m != 0; m &= m - 1 {
		out = append(out, bits.TrailingZeros64(m))
	}
	return out
}

// removeVert returns a fresh ascending copy of verts without v.
func removeVert(verts []int, v int) []int {
	out := make([]int, 0, len(verts))
	for _, u := range verts {
		if u != v {
			out = append(out, u)
		}
	}
	return out
}

// insertVert returns a fresh ascending copy of verts with v added.
func insertVert(verts []int, v int) []int {
	out := append(append([]int(nil), verts...), v)
	sort.Ints(out)
	return out
}

// Validate checks the defining properties of a nice tree decomposition
// against its template: bag sizes, introduce/forget/join shape, every
// vertex introduced, every edge covered by some bag, and connectivity of
// each vertex's bag set (each vertex is introduced exactly once per
// connected stretch and never re-introduced after its final forget on
// any root path). It is the oracle the decomposition fuzz target runs.
func (d *Decomposition) Validate(t *Template) error {
	if d.Root == nil || len(d.Root.Verts) != 0 {
		return fmt.Errorf("tmpl: decomposition root bag not empty")
	}
	introduced := make([]bool, t.K())
	edgeCovered := map[[2]int]bool{}
	for _, bg := range d.Order {
		if len(bg.Verts) > MaxBagVerts {
			return fmt.Errorf("tmpl: bag %v exceeds %d vertices", bg.Verts, MaxBagVerts)
		}
		if !sort.IntsAreSorted(bg.Verts) {
			return fmt.Errorf("tmpl: bag %v not sorted", bg.Verts)
		}
		for _, v := range bg.Verts {
			if v < 0 || v >= t.K() {
				return fmt.Errorf("tmpl: bag vertex %d out of range", v)
			}
		}
		switch bg.Kind {
		case BagLeaf:
			if bg.Left != nil || bg.Right != nil || len(bg.Verts) != 0 {
				return fmt.Errorf("tmpl: malformed leaf bag")
			}
		case BagIntroduce:
			if bg.Left == nil || bg.Right != nil {
				return fmt.Errorf("tmpl: malformed introduce bag")
			}
			if !sameVerts(removeVert(bg.Verts, bg.Vertex), bg.Left.Verts) || !containsVert(bg.Verts, bg.Vertex) || containsVert(bg.Left.Verts, bg.Vertex) {
				return fmt.Errorf("tmpl: introduce %d does not extend child bag %v -> %v", bg.Vertex, bg.Left.Verts, bg.Verts)
			}
			introduced[bg.Vertex] = true
			for _, u := range bg.Verts {
				if u != bg.Vertex && t.HasEdge(bg.Vertex, u) {
					a, b := bg.Vertex, u
					if a > b {
						a, b = b, a
					}
					edgeCovered[[2]int{a, b}] = true
				}
			}
		case BagForget:
			if bg.Left == nil || bg.Right != nil {
				return fmt.Errorf("tmpl: malformed forget bag")
			}
			if !sameVerts(removeVert(bg.Left.Verts, bg.Vertex), bg.Verts) || containsVert(bg.Verts, bg.Vertex) || !containsVert(bg.Left.Verts, bg.Vertex) {
				return fmt.Errorf("tmpl: forget %d does not shrink child bag %v -> %v", bg.Vertex, bg.Left.Verts, bg.Verts)
			}
		case BagJoin:
			if bg.Left == nil || bg.Right == nil {
				return fmt.Errorf("tmpl: malformed join bag")
			}
			if !sameVerts(bg.Verts, bg.Left.Verts) || !sameVerts(bg.Verts, bg.Right.Verts) {
				return fmt.Errorf("tmpl: join bags disagree: %v / %v / %v", bg.Verts, bg.Left.Verts, bg.Right.Verts)
			}
		default:
			return fmt.Errorf("tmpl: unknown bag kind %v", bg.Kind)
		}
	}
	for v := 0; v < t.K(); v++ {
		if !introduced[v] {
			return fmt.Errorf("tmpl: vertex %d never introduced", v)
		}
	}
	for _, e := range t.Edges() {
		if !edgeCovered[[2]int{e[0], e[1]}] {
			return fmt.Errorf("tmpl: edge %d-%d not covered by any bag", e[0], e[1])
		}
	}
	// Vertex-subtree connectivity: on every root-to-leaf path, the bags
	// containing a fixed vertex must form one contiguous run. Walk down
	// tracking a per-vertex run state (unseen / in run / run ended) and
	// reject any vertex that reappears after its run ended.
	const (
		unseen = iota
		inRun
		runEnded
	)
	var check func(bg *Bag, state []int8) error
	check = func(bg *Bag, state []int8) error {
		next := append([]int8(nil), state...)
		inBag := make([]bool, len(state))
		for _, v := range bg.Verts {
			inBag[v] = true
			if next[v] == runEnded {
				return fmt.Errorf("tmpl: vertex %d reappears in bag %v after leaving an ancestor bag (disconnected subtree)", v, bg.Verts)
			}
			next[v] = inRun
		}
		for v := range next {
			if next[v] == inRun && !inBag[v] {
				next[v] = runEnded
			}
		}
		if bg.Left != nil {
			if err := check(bg.Left, next); err != nil {
				return err
			}
		}
		if bg.Right != nil {
			if err := check(bg.Right, next); err != nil {
				return err
			}
		}
		return nil
	}
	return check(d.Root, make([]int8, t.K()))
}

func sameVerts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsVert(verts []int, v int) bool {
	for _, u := range verts {
		if u == v {
			return true
		}
	}
	return false
}
