package tmpl

// General-graph automorphism and isomorphism support for non-tree
// templates. The tree paths in canon.go stay on the linear-time AHU
// machinery; the routines here are only reached for templates with
// cycles, where the counts stay small (k <= 64, and in practice the
// motif zoo's k <= 4 plus parsed cycles/cliques).
//
// |Aut| is computed by an orbit-stabilizer chain instead of enumerating
// the group: |Aut| = Π_i |orbit of v_i under the stabilizer of
// v_0..v_{i-1}|, where each orbit membership is a single first-success
// backtracking search. This keeps highly symmetric templates (cliques,
// long cycles) polynomial in practice where full enumeration would walk
// k! mappings.

// generalAutomorphisms returns |Aut(T)| for an arbitrary connected
// template via the orbit-stabilizer chain. pre lists vertices that every
// counted automorphism must fix pointwise (empty for the full group; the
// root for rooted automorphism counts).
func (t *Template) generalAutomorphisms(pre []int) int64 {
	k := t.K()
	fixed := make([]bool, k)
	for _, v := range pre {
		fixed[v] = true
	}
	total := int64(1)
	for v := 0; v < k; v++ {
		if fixed[v] {
			continue
		}
		orbit := int64(0)
		for w := 0; w < k; w++ {
			if t.existsAutomorphism(fixed, v, w) {
				orbit++
			}
		}
		total = mulAutSat(total, orbit)
		fixed[v] = true
	}
	return total
}

// existsAutomorphism reports whether some automorphism fixes every
// vertex marked in fixed pointwise and maps v to w.
func (t *Template) existsAutomorphism(fixed []bool, v, w int) bool {
	k := t.K()
	img := make([]int, k) // template vertex -> image, -1 unset
	used := make([]bool, k)
	for i := range img {
		img[i] = -1
	}
	assign := func(a, b int) bool {
		if img[a] >= 0 {
			return img[a] == b
		}
		if used[b] || t.Degree(a) != t.Degree(b) || t.Label(a) != t.Label(b) {
			return false
		}
		// Every already-mapped neighbor must stay a neighbor. Checking
		// edge preservation alone suffices: a bijection between graphs
		// with equal finite edge counts that maps edges to edges is an
		// isomorphism.
		for _, u := range t.adj[a] {
			if m := img[u]; m >= 0 && !t.HasEdge(b, m) {
				return false
			}
		}
		img[a] = b
		used[b] = true
		return true
	}
	for f := range fixed {
		if fixed[f] && !assign(f, f) {
			return false
		}
	}
	if !assign(v, w) {
		return false
	}
	// Complete the mapping over the remaining vertices, first success wins.
	rest := make([]int, 0, k)
	for u := 0; u < k; u++ {
		if img[u] < 0 {
			rest = append(rest, u)
		}
	}
	var search func(i int) bool
	search = func(i int) bool {
		if i == len(rest) {
			return true
		}
		a := rest[i]
		for b := 0; b < k; b++ {
			if used[b] || t.Degree(a) != t.Degree(b) || t.Label(a) != t.Label(b) {
				continue
			}
			ok := true
			for _, u := range t.adj[a] {
				if m := img[u]; m >= 0 && !t.HasEdge(b, m) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			img[a] = b
			used[b] = true
			if search(i + 1) {
				return true
			}
			img[a] = -1
			used[b] = false
		}
		return false
	}
	return search(0)
}

// generalOrbits partitions an arbitrary connected template's vertices
// into automorphism orbits by pairwise first-success searches.
func (t *Template) generalOrbits() [][]int {
	k := t.K()
	rep := make([]int, k) // orbit representative (smallest member)
	for v := range rep {
		rep[v] = v
	}
	none := make([]bool, k)
	for v := 0; v < k; v++ {
		if rep[v] != v {
			continue
		}
		for w := v + 1; w < k; w++ {
			if rep[w] == w && t.existsAutomorphism(none, v, w) {
				rep[w] = v
			}
		}
	}
	var out [][]int
	for v := 0; v < k; v++ {
		if rep[v] == v {
			orbit := []int{v}
			for w := v + 1; w < k; w++ {
				if rep[w] == v {
					orbit = append(orbit, w)
				}
			}
			out = append(out, orbit)
		}
	}
	return out
}

// generalIsomorphic reports whether two arbitrary connected templates of
// equal size are isomorphic (label-aware), by first-success backtracking.
func generalIsomorphic(a, b *Template) bool {
	k := a.K()
	if k != b.K() || a.NumEdges() != b.NumEdges() {
		return false
	}
	img := make([]int, k)
	used := make([]bool, k)
	for i := range img {
		img[i] = -1
	}
	// Map in a BFS order from vertex 0 so every placed vertex after the
	// first has a mapped neighbor constraining its candidates.
	order := make([]int, 0, k)
	seen := make([]bool, k)
	order = append(order, 0)
	seen[0] = true
	for i := 0; i < len(order); i++ {
		for _, u := range a.adj[order[i]] {
			if !seen[u] {
				seen[u] = true
				order = append(order, int(u))
			}
		}
	}
	var search func(i int) bool
	search = func(i int) bool {
		if i == k {
			return true
		}
		v := order[i]
		for w := 0; w < k; w++ {
			if used[w] || a.Degree(v) != b.Degree(w) || a.Label(v) != b.Label(w) {
				continue
			}
			ok := true
			for _, u := range a.adj[v] {
				if m := img[u]; m >= 0 && !b.HasEdge(w, m) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			img[v] = w
			used[w] = true
			if search(i + 1) {
				return true
			}
			img[v] = -1
			used[w] = false
		}
		return false
	}
	return search(0)
}
