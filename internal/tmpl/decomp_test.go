package tmpl

import (
	"strings"
	"testing"
)

// TestDecomposeZoo checks that every zoo motif decomposes into a valid
// nice decomposition at the expected width.
func TestDecomposeZoo(t *testing.T) {
	wantWidth := map[string]int{
		"triangle":        2,
		"path3":           1,
		"star3":           1,
		"c4":              2,
		"diamond":         2,
		"tailed-triangle": 2,
		"k4":              3,
	}
	for _, name := range ZooNames() {
		tr := MustZoo(name)
		d, err := Decompose(tr)
		if err != nil {
			t.Fatalf("Decompose(%s): %v", name, err)
		}
		if err := d.Validate(tr); err != nil {
			t.Errorf("Decompose(%s) invalid: %v", name, err)
		}
		if d.Width != wantWidth[name] {
			t.Errorf("Decompose(%s) width = %d, want %d", name, d.Width, wantWidth[name])
		}
	}
}

// TestDecomposeTreesWidthOne checks that every free tree up to k=7
// decomposes validly at width 1 — the reduction the tree bit-identity
// property rides on.
func TestDecomposeTreesWidthOne(t *testing.T) {
	for k := 1; k <= 7; k++ {
		for _, tr := range AllTrees(k) {
			d, err := Decompose(tr)
			if err != nil {
				t.Fatalf("Decompose(%s): %v", tr.Name(), err)
			}
			if err := d.Validate(tr); err != nil {
				t.Fatalf("Decompose(%s) invalid: %v", tr.Name(), err)
			}
			if k > 1 && d.Width != 1 {
				t.Errorf("Decompose(%s) width = %d, want 1", tr.Name(), d.Width)
			}
		}
	}
}

// TestDecomposeCyclesAndBeyond checks longer cycles (treewidth 2) and
// the clean rejection of higher-treewidth templates.
func TestDecomposeCyclesAndBeyond(t *testing.T) {
	for k := 3; k <= 12; k++ {
		c, err := Cycle(k)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Decompose(c)
		if err != nil {
			t.Fatalf("Decompose(C%d): %v", k, err)
		}
		if err := d.Validate(c); err != nil {
			t.Fatalf("Decompose(C%d) invalid: %v", k, err)
		}
		if d.Width != 2 {
			t.Errorf("Decompose(C%d) width = %d, want 2", k, d.Width)
		}
	}
	for k := 5; k <= 8; k++ {
		c, err := Clique(k)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decompose(c); err == nil {
			t.Errorf("Decompose(K%d) accepted a treewidth-%d template", k, k-1)
		} else if !strings.Contains(err.Error(), "treewidth") {
			t.Errorf("Decompose(K%d) error %q does not name treewidth", k, err)
		}
	}
}

// TestDecomposeSingleVertex covers the degenerate k=1 template.
func TestDecomposeSingleVertex(t *testing.T) {
	tr := MustTree("one", 1, nil, nil)
	d, err := Decompose(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(tr); err != nil {
		t.Fatal(err)
	}
	if d.Width != 0 {
		t.Errorf("width = %d, want 0", d.Width)
	}
}

// TestAutomorphismsNonTree pins |Aut| for the non-tree zoo and small
// cycles/cliques against known group orders — the scale-factor fix the
// sibling-subtree scan could not provide.
func TestAutomorphismsNonTree(t *testing.T) {
	cases := []struct {
		name string
		t    *Template
		want int64
	}{
		{"triangle", Triangle(), 6},
		{"c4", MustZoo("c4"), 8},
		{"c5", mustCycle(t, 5), 10},
		{"c6", mustCycle(t, 6), 12},
		{"diamond", Diamond(), 4},
		{"tailed-triangle", TailedTriangle(), 2},
		{"k4", MustZoo("k4"), 24},
		{"k5", mustClique(t, 5), 120},
		{"k6", mustClique(t, 6), 720},
	}
	for _, c := range cases {
		if got := c.t.Automorphisms(); got != c.want {
			t.Errorf("Automorphisms(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestRootedAutomorphismsNonTree pins stabilizer sizes: the number of
// automorphisms fixing one vertex.
func TestRootedAutomorphismsNonTree(t *testing.T) {
	cases := []struct {
		name string
		t    *Template
		root int
		want int64
	}{
		{"c4@0", MustZoo("c4"), 0, 2},     // reflection through 0
		{"k4@0", MustZoo("k4"), 0, 6},     // S3 on the rest
		{"diamond@0", Diamond(), 0, 2},    // chord endpoint: swap 2,3
		{"diamond@2", Diamond(), 2, 2},    // off-chord: swap 0,1
		{"paw@3", TailedTriangle(), 3, 2}, // tail fixed: swap 1,2
		{"paw@1", TailedTriangle(), 1, 1},
	}
	for _, c := range cases {
		if got := c.t.RootedAutomorphisms(c.root); got != c.want {
			t.Errorf("RootedAutomorphisms(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestOrbitsNonTree pins automorphism orbits of the non-tree zoo.
func TestOrbitsNonTree(t *testing.T) {
	check := func(name string, tr *Template, want [][]int) {
		got := tr.Orbits()
		if len(got) != len(want) {
			t.Errorf("Orbits(%s) = %v, want %v", name, got, want)
			return
		}
		for i := range got {
			if !sameVerts(got[i], want[i]) {
				t.Errorf("Orbits(%s) = %v, want %v", name, got, want)
				return
			}
		}
	}
	check("c4", MustZoo("c4"), [][]int{{0, 1, 2, 3}})
	check("k4", MustZoo("k4"), [][]int{{0, 1, 2, 3}})
	check("diamond", Diamond(), [][]int{{0, 1}, {2, 3}})
	check("tailed-triangle", TailedTriangle(), [][]int{{0}, {1, 2}, {3}})
}

// TestIsIsomorphicNonTree covers the backtracking branch: relabeled
// copies match, structurally different templates of equal size and edge
// count do not, and trees never match non-trees.
func TestIsIsomorphicNonTree(t *testing.T) {
	c4 := MustZoo("c4")
	c4b := MustGraph("c4-relabeled", 4, [][2]int{{0, 2}, {2, 1}, {1, 3}, {3, 0}}, nil)
	if !IsIsomorphic(c4, c4b) {
		t.Error("relabeled C4 not recognized as isomorphic")
	}
	if IsIsomorphic(c4, MustZoo("diamond")) {
		t.Error("C4 isomorphic to diamond")
	}
	if IsIsomorphic(c4, Star(4)) {
		t.Error("C4 isomorphic to the 4-star")
	}
	if IsIsomorphic(MustZoo("tailed-triangle"), MustZoo("diamond")) {
		t.Error("paw isomorphic to diamond (equal size, different edge count)")
	}
}

// TestParseGraphNotation covers the cycle/clique/zoo notation and
// general edge lists, including hostile specs.
func TestParseGraphNotation(t *testing.T) {
	accepts := []struct {
		spec  string
		k     int
		edges int
		tree  bool
	}{
		{"triangle", 3, 3, false},
		{"c4", 4, 4, false},
		{"C5", 5, 5, false},
		{"cycle:6", 6, 6, false},
		{"k4", 4, 6, false},
		{"clique:3", 3, 3, false},
		{"diamond", 4, 5, false},
		{"paw", 4, 4, false},
		{"tailed-triangle", 4, 4, false},
		{"path3", 3, 2, true},
		{"star3", 4, 3, true},
		{"0-1 1-2 2-0", 3, 3, false},
		{"0-1 1-2 2-3", 4, 3, true},
		{"0-1 1-2 2-0 0-3 1-3 2-3", 4, 6, false},
	}
	for _, c := range accepts {
		tr, err := ParseGraph("", c.spec)
		if err != nil {
			t.Errorf("ParseGraph(%q): %v", c.spec, err)
			continue
		}
		if tr.K() != c.k || tr.NumEdges() != c.edges || tr.IsTree() != c.tree {
			t.Errorf("ParseGraph(%q) = k=%d m=%d tree=%v, want k=%d m=%d tree=%v",
				c.spec, tr.K(), tr.NumEdges(), tr.IsTree(), c.k, c.edges, c.tree)
		}
	}
	rejects := []string{"", "c2", "c-1", "c999", "k2", "k999999", "cycle:x", "0-0", "0-1 0-1", "0-1 2-3", "1-2-3"}
	for _, spec := range rejects {
		if _, err := ParseGraph("", spec); err == nil {
			t.Errorf("ParseGraph(%q) accepted a hostile spec", spec)
		}
	}
	// Parse stays tree-only: cycles must keep failing there.
	if _, err := Parse("cyc", "0-1 1-2 2-0"); err == nil {
		t.Error("Parse accepted a cyclic edge list")
	}
}

func mustCycle(t *testing.T, k int) *Template {
	t.Helper()
	c, err := Cycle(k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustClique(t *testing.T, k int) *Template {
	t.Helper()
	c, err := Clique(k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
