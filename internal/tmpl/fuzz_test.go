package tmpl

import (
	"strings"
	"testing"
)

// FuzzParse checks the template parser never panics and anything it
// accepts is a valid tree whose canonical form is stable.
func FuzzParse(f *testing.F) {
	f.Add("0-1 1-2")
	f.Add("0-1 1-2 1-3 3-4")
	f.Add("0-0")
	f.Add("a-b")
	f.Add("0-1 2-3")
	f.Add("")
	// Shapes the serve query path can receive: duplicate edges, reversed
	// duplicates, negative and overflowing ids, a vertex count past the
	// 64-color ceiling, stray separators, and unicode digits.
	f.Add("0-1 0-1")
	f.Add("0-1 1-0")
	f.Add("-1-2")
	f.Add("0-99999999999999999999")
	f.Add("0-1 1-2 2-3 3-4 4-5 5-6 6-7 7-8 8-9 9-10 10-11 11-12 12-13 13-14 14-15 15-16 16-17 17-18 18-19 19-20 20-21 21-22 22-23 23-24 24-25 25-26 26-27 27-28 28-29 29-30 30-31 31-32 32-33 33-34 34-35 35-36 36-37 37-38 38-39 39-40 40-41 41-42 42-43 43-44 44-45 45-46 46-47 47-48 48-49 49-50 50-51 51-52 52-53 53-54 54-55 55-56 56-57 57-58 58-59 59-60 60-61 61-62 62-63 63-64")
	f.Add("0-1  1-2")
	f.Add("0–1")
	f.Add("٠-١")
	f.Fuzz(func(t *testing.T, spec string) {
		tr, err := Parse("fuzz", spec)
		if err != nil {
			return
		}
		if tr.K() < 1 || len(tr.Edges()) != tr.K()-1 {
			t.Fatalf("accepted template malformed: %v", tr)
		}
		if tr.CanonicalFree() != tr.CanonicalFree() {
			t.Fatal("canonical form unstable")
		}
		if tr.Automorphisms() < 1 {
			t.Fatal("automorphism count < 1")
		}
		total := 0
		for _, o := range tr.Orbits() {
			total += len(o)
		}
		if total != tr.K() {
			t.Fatal("orbits do not partition vertices")
		}
	})
}

// FuzzParseGraph checks the extended (non-tree) parser and the tree
// decomposition builder: hostile cycle/clique notation, disconnected
// templates, and treewidth rejects must error cleanly; anything accepted
// must be a connected simple graph whose decomposition either validates
// against the nice-decomposition axioms or is rejected with a treewidth
// error, and whose automorphism orbits partition the vertices.
func FuzzParseGraph(f *testing.F) {
	// Zoo names and compact notation, valid and hostile.
	f.Add("triangle")
	f.Add("c4")
	f.Add("k4")
	f.Add("diamond")
	f.Add("tailed-triangle")
	f.Add("c2")
	f.Add("c-1")
	f.Add("c64")
	f.Add("c999999999999999999999")
	f.Add("k2")
	f.Add("k5")
	f.Add("k16")
	f.Add("k999999")
	f.Add("cycle:")
	f.Add("clique:x")
	// Edge lists: cycles, cliques-as-lists, disconnected, self-loops,
	// duplicates, a treewidth-3 reject (K5 as a list), multigraph-ish
	// near misses, and unicode separators.
	f.Add("0-1 1-2 2-0")
	f.Add("0-1 1-2 2-0 0-3 1-3 2-3")
	f.Add("0-1 1-2 2-0 3-4 4-5 5-3")
	f.Add("0-1 1-2 2-0 2-3 3-4 4-2")
	f.Add("0-0")
	f.Add("0-1 1-0")
	f.Add("0-1 2-3")
	f.Add("0-1 0-2 0-3 0-4 1-2 1-3 1-4 2-3 2-4 3-4")
	f.Add("0-1 1-2 2-3 3-0 0-2 1-3")
	f.Add("-1-2")
	f.Add("0–1")
	f.Add("")
	f.Fuzz(func(t *testing.T, spec string) {
		tr, err := ParseGraph("fuzz", spec)
		if err != nil {
			return
		}
		k := tr.K()
		if k < 1 || k > 64 {
			t.Fatalf("accepted template size %d out of range", k)
		}
		m := tr.NumEdges()
		if m < k-1 {
			t.Fatalf("accepted template with %d edges on %d vertices (disconnected)", m, k)
		}
		if tr.IsTree() != (m == k-1) {
			t.Fatalf("IsTree=%v but m=%d k=%d", tr.IsTree(), m, k)
		}
		d, err := Decompose(tr)
		if err != nil {
			if !strings.Contains(err.Error(), "treewidth") {
				t.Fatalf("Decompose rejected %q without a treewidth error: %v", spec, err)
			}
			return
		}
		if err := d.Validate(tr); err != nil {
			t.Fatalf("Decompose(%q) produced an invalid decomposition: %v", spec, err)
		}
		if tr.IsTree() && k > 1 && d.Width != 1 {
			t.Fatalf("tree template decomposed at width %d", d.Width)
		}
		// The group-theoretic assertions run a backtracking search per
		// vertex pair; keep them to small templates so hostile dense
		// inputs stay cheap.
		if k <= 8 {
			if tr.Automorphisms() < 1 {
				t.Fatal("automorphism count < 1")
			}
			total := 0
			for _, o := range tr.Orbits() {
				total += len(o)
			}
			if total != k {
				t.Fatal("orbits do not partition vertices")
			}
		}
	})
}
