package tmpl

import "testing"

// FuzzParse checks the template parser never panics and anything it
// accepts is a valid tree whose canonical form is stable.
func FuzzParse(f *testing.F) {
	f.Add("0-1 1-2")
	f.Add("0-1 1-2 1-3 3-4")
	f.Add("0-0")
	f.Add("a-b")
	f.Add("0-1 2-3")
	f.Add("")
	f.Fuzz(func(t *testing.T, spec string) {
		tr, err := Parse("fuzz", spec)
		if err != nil {
			return
		}
		if tr.K() < 1 || len(tr.Edges()) != tr.K()-1 {
			t.Fatalf("accepted template malformed: %v", tr)
		}
		if tr.CanonicalFree() != tr.CanonicalFree() {
			t.Fatal("canonical form unstable")
		}
		if tr.Automorphisms() < 1 {
			t.Fatal("automorphism count < 1")
		}
		total := 0
		for _, o := range tr.Orbits() {
			total += len(o)
		}
		if total != tr.K() {
			t.Fatal("orbits do not partition vertices")
		}
	})
}
