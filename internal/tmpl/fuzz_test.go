package tmpl

import "testing"

// FuzzParse checks the template parser never panics and anything it
// accepts is a valid tree whose canonical form is stable.
func FuzzParse(f *testing.F) {
	f.Add("0-1 1-2")
	f.Add("0-1 1-2 1-3 3-4")
	f.Add("0-0")
	f.Add("a-b")
	f.Add("0-1 2-3")
	f.Add("")
	// Shapes the serve query path can receive: duplicate edges, reversed
	// duplicates, negative and overflowing ids, a vertex count past the
	// 64-color ceiling, stray separators, and unicode digits.
	f.Add("0-1 0-1")
	f.Add("0-1 1-0")
	f.Add("-1-2")
	f.Add("0-99999999999999999999")
	f.Add("0-1 1-2 2-3 3-4 4-5 5-6 6-7 7-8 8-9 9-10 10-11 11-12 12-13 13-14 14-15 15-16 16-17 17-18 18-19 19-20 20-21 21-22 22-23 23-24 24-25 25-26 26-27 27-28 28-29 29-30 30-31 31-32 32-33 33-34 34-35 35-36 36-37 37-38 38-39 39-40 40-41 41-42 42-43 43-44 44-45 45-46 46-47 47-48 48-49 49-50 50-51 51-52 52-53 53-54 54-55 55-56 56-57 57-58 58-59 59-60 60-61 61-62 62-63 63-64")
	f.Add("0-1  1-2")
	f.Add("0–1")
	f.Add("٠-١")
	f.Fuzz(func(t *testing.T, spec string) {
		tr, err := Parse("fuzz", spec)
		if err != nil {
			return
		}
		if tr.K() < 1 || len(tr.Edges()) != tr.K()-1 {
			t.Fatalf("accepted template malformed: %v", tr)
		}
		if tr.CanonicalFree() != tr.CanonicalFree() {
			t.Fatal("canonical form unstable")
		}
		if tr.Automorphisms() < 1 {
			t.Fatal("automorphism count < 1")
		}
		total := 0
		for _, o := range tr.Orbits() {
			total += len(o)
		}
		if total != tr.K() {
			t.Fatal("orbits do not partition vertices")
		}
	})
}
