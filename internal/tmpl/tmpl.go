// Package tmpl implements templates for subgraph counting: template
// construction and validation (trees and general connected graphs up to
// small treewidth), the paper's named templates (U3-1 ... U12-2), the
// size-3/4 motif zoo (cycles, cliques, diamond, tailed triangle), nice
// tree decompositions for the beyond-trees DP, AHU canonical forms for
// rooted and free trees, automorphism and orbit computation (tree
// specializations plus a general orbit-stabilizer fallback), and
// exhaustive enumeration of all free trees of a given size for motif
// finding.
package tmpl

import (
	"fmt"
	"strconv"
	"strings"
)

// Template is an undirected connected graph on K() vertices numbered
// 0..K()-1. Most templates are trees (the paper's case); NewGraph also
// admits connected non-tree templates, which the engine counts via a
// tree decomposition of the template. Labels, when non-nil, assigns an
// integer label per template vertex for labeled counting. Templates are
// immutable after construction.
type Template struct {
	name   string
	adj    [][]int8
	labels []int32
	tree   bool
}

// NewTree builds a template from an undirected edge list over vertices
// 0..k-1 and verifies it is a tree (connected, acyclic, no self-loops or
// duplicate edges). labels may be nil or have length k.
func NewTree(name string, k int, edges [][2]int, labels []int32) (*Template, error) {
	if k >= 1 && len(edges) != k-1 {
		return nil, fmt.Errorf("tmpl: a tree on %d vertices needs %d edges, got %d", k, k-1, len(edges))
	}
	return NewGraph(name, k, edges, labels)
}

// NewGraph builds a template from an undirected edge list over vertices
// 0..k-1 and verifies it is a simple connected graph (no self-loops or
// duplicate edges). Tree templates run the classic partition-tree DP;
// non-tree templates run the tree-decomposition DP and must have small
// treewidth (see Decompose). labels may be nil or have length k.
func NewGraph(name string, k int, edges [][2]int, labels []int32) (*Template, error) {
	if k < 1 {
		return nil, fmt.Errorf("tmpl: template must have at least 1 vertex, got %d", k)
	}
	if k > 64 {
		return nil, fmt.Errorf("tmpl: template size %d unsupported (max 64)", k)
	}
	if labels != nil && len(labels) != k {
		return nil, fmt.Errorf("tmpl: %d labels for %d vertices", len(labels), k)
	}
	adj := make([][]int8, k)
	seen := map[[2]int]bool{}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u >= k || v >= k {
			return nil, fmt.Errorf("tmpl: edge (%d,%d) out of range [0,%d)", u, v, k)
		}
		if u == v {
			return nil, fmt.Errorf("tmpl: self-loop at %d", u)
		}
		key := [2]int{min(u, v), max(u, v)}
		if seen[key] {
			return nil, fmt.Errorf("tmpl: duplicate edge (%d,%d)", u, v)
		}
		seen[key] = true
		adj[u] = append(adj[u], int8(v))
		adj[v] = append(adj[v], int8(u))
	}
	t := &Template{name: name, adj: adj, tree: len(edges) == k-1}
	if labels != nil {
		t.labels = append([]int32(nil), labels...)
	}
	// Connectivity; with exactly k-1 edges it also certifies tree-ness.
	visited := make([]bool, k)
	stack := []int8{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !visited[u] {
				visited[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	if count != k {
		return nil, fmt.Errorf("tmpl: template is not connected (%d of %d vertices reachable)", count, k)
	}
	return t, nil
}

// MustTree is NewTree for statically known-valid inputs; it panics on
// error.
func MustTree(name string, k int, edges [][2]int, labels []int32) *Template {
	t, err := NewTree(name, k, edges, labels)
	if err != nil {
		panic(err)
	}
	return t
}

// MustGraph is NewGraph for statically known-valid inputs; it panics on
// error.
func MustGraph(name string, k int, edges [][2]int, labels []int32) *Template {
	t, err := NewGraph(name, k, edges, labels)
	if err != nil {
		panic(err)
	}
	return t
}

// K returns the number of template vertices.
func (t *Template) K() int { return len(t.adj) }

// Name returns the template's display name.
func (t *Template) Name() string { return t.name }

// Adj returns the neighbors of template vertex v. The slice aliases
// internal storage and must not be modified.
func (t *Template) Adj(v int) []int8 { return t.adj[v] }

// Degree returns the degree of template vertex v.
func (t *Template) Degree(v int) int { return len(t.adj[v]) }

// Labeled reports whether the template carries vertex labels.
func (t *Template) Labeled() bool { return t.labels != nil }

// IsTree reports whether the template is acyclic. Tree templates run the
// classic partition-tree DP; non-tree templates run the bag DP over a
// tree decomposition.
func (t *Template) IsTree() bool { return t.tree }

// NumEdges returns the number of template edges (K()-1 for trees).
func (t *Template) NumEdges() int {
	deg := 0
	for v := range t.adj {
		deg += len(t.adj[v])
	}
	return deg / 2
}

// HasEdge reports whether template vertices u and v are adjacent.
func (t *Template) HasEdge(u, v int) bool {
	for _, w := range t.adj[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// Label returns the label of template vertex v (0 when unlabeled).
func (t *Template) Label(v int) int32 {
	if t.labels == nil {
		return 0
	}
	return t.labels[v]
}

// Edges returns each template edge once with smaller endpoint first.
func (t *Template) Edges() [][2]int {
	out := make([][2]int, 0, t.NumEdges())
	for v := range t.adj {
		for _, u := range t.adj[v] {
			if v < int(u) {
				out = append(out, [2]int{v, int(u)})
			}
		}
	}
	return out
}

// WithLabels returns a copy of t carrying the given vertex labels.
func (t *Template) WithLabels(name string, labels []int32) (*Template, error) {
	return NewGraph(name, t.K(), t.Edges(), labels)
}

// String renders the template as its name and edge list.
func (t *Template) String() string {
	var sb strings.Builder
	if t.name != "" {
		sb.WriteString(t.name)
		sb.WriteByte(' ')
	}
	fmt.Fprintf(&sb, "k=%d", t.K())
	for _, e := range t.Edges() {
		fmt.Fprintf(&sb, " %d-%d", e[0], e[1])
	}
	return sb.String()
}

// scanEdges parses a compact edge-list string such as "0-1 1-2 1-3" into
// an edge list; the implied vertex count is max id + 1.
func scanEdges(s string) (edges [][2]int, k int, err error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, 0, fmt.Errorf("tmpl: empty template spec")
	}
	edges = make([][2]int, 0, len(fields))
	for _, f := range fields {
		parts := strings.Split(f, "-")
		if len(parts) != 2 {
			return nil, 0, fmt.Errorf("tmpl: malformed edge %q (want u-v)", f)
		}
		u, err1 := strconv.Atoi(parts[0])
		v, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, 0, fmt.Errorf("tmpl: malformed edge %q", f)
		}
		edges = append(edges, [2]int{u, v})
		if u+1 > k {
			k = u + 1
		}
		if v+1 > k {
			k = v + 1
		}
	}
	return edges, k, nil
}

// Parse builds a tree template from a compact edge-list string such as
// "0-1 1-2 1-3". Vertex count is max id + 1. Edge lists with cycles are
// rejected; use ParseGraph for general templates.
func Parse(name, s string) (*Template, error) {
	edges, k, err := scanEdges(s)
	if err != nil {
		return nil, err
	}
	return NewTree(name, k, edges, nil)
}

// Path returns the path template on k vertices (0-1-2-...-k-1).
func Path(k int) *Template {
	edges := make([][2]int, 0, k-1)
	for i := 0; i < k-1; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return MustTree(fmt.Sprintf("P%d", k), k, edges, nil)
}

// Star returns the star template on k vertices (vertex 0 is the center).
func Star(k int) *Template {
	edges := make([][2]int, 0, k-1)
	for i := 1; i < k; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return MustTree(fmt.Sprintf("S%d", k), k, edges, nil)
}

// Spider returns a spider: vertex 0 is the center and one path of each
// given length is attached to it.
func Spider(lengths ...int) *Template {
	k := 1
	for _, l := range lengths {
		if l < 1 {
			panic("tmpl: spider leg length must be >= 1")
		}
		k += l
	}
	edges := make([][2]int, 0, k-1)
	next := 1
	for _, l := range lengths {
		prev := 0
		for i := 0; i < l; i++ {
			edges = append(edges, [2]int{prev, next})
			prev = next
			next++
		}
	}
	name := "spider"
	for _, l := range lengths {
		name += fmt.Sprintf("-%d", l)
	}
	return MustTree(name, k, edges, nil)
}

// Dot renders the template in Graphviz DOT format (labels shown when
// present), for documentation and debugging.
func (t *Template) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %q {\n", t.name)
	for v := 0; v < t.K(); v++ {
		if t.Labeled() {
			fmt.Fprintf(&sb, "  %d [label=\"%d (L%d)\"];\n", v, v, t.Label(v))
		} else {
			fmt.Fprintf(&sb, "  %d;\n", v)
		}
	}
	for _, e := range t.Edges() {
		fmt.Fprintf(&sb, "  %d -- %d;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}
