package tmpl

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewTreeValidation(t *testing.T) {
	cases := []struct {
		k     int
		edges [][2]int
		ok    bool
	}{
		{1, nil, true},
		{2, [][2]int{{0, 1}}, true},
		{3, [][2]int{{0, 1}, {1, 2}}, true},
		{0, nil, false},                              // too small
		{3, [][2]int{{0, 1}}, false},                 // wrong edge count
		{3, [][2]int{{0, 1}, {0, 1}}, false},         // duplicate
		{3, [][2]int{{0, 1}, {1, 1}}, false},         // self loop
		{3, [][2]int{{0, 1}, {1, 5}}, false},         // out of range
		{4, [][2]int{{0, 1}, {1, 0}, {2, 3}}, false}, // disconnected + dup
	}
	for _, c := range cases {
		_, err := NewTree("t", c.k, c.edges, nil)
		if (err == nil) != c.ok {
			t.Errorf("NewTree(k=%d, %v): err=%v, want ok=%v", c.k, c.edges, err, c.ok)
		}
	}
	if _, err := NewTree("t", 2, [][2]int{{0, 1}}, []int32{1}); err == nil {
		t.Error("wrong label count accepted")
	}
}

func TestTemplateAccessors(t *testing.T) {
	tr := MustTree("x", 3, [][2]int{{0, 1}, {1, 2}}, []int32{5, 6, 7})
	if tr.K() != 3 || tr.Name() != "x" {
		t.Fatal("basic accessors broken")
	}
	if tr.Degree(1) != 2 || tr.Degree(0) != 1 {
		t.Fatal("degrees wrong")
	}
	if !tr.Labeled() || tr.Label(2) != 7 {
		t.Fatal("labels wrong")
	}
	un := Path(3)
	if un.Labeled() || un.Label(0) != 0 {
		t.Fatal("unlabeled template should report label 0")
	}
	if len(tr.Edges()) != 2 {
		t.Fatal("edges wrong")
	}
	if !strings.Contains(tr.String(), "k=3") {
		t.Fatalf("String() = %q", tr.String())
	}
}

func TestParse(t *testing.T) {
	tr, err := Parse("p", "0-1 1-2 1-3")
	if err != nil {
		t.Fatal(err)
	}
	if tr.K() != 4 || tr.Degree(1) != 3 {
		t.Fatalf("parsed wrong: %v", tr)
	}
	for _, bad := range []string{"", "0-1 2", "0-1 a-b", "0-0", "0-1 3-4"} {
		if _, err := Parse("p", bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestParseRejectsHostileSpecs pins the rejection behavior for the
// template strings the serve query path can receive over the wire:
// every spec here must return an error — never panic, never be
// silently repaired into a valid tree. Each was first added as a fuzz
// seed; this test keeps the contract even when fuzzing is skipped.
func TestParseRejectsHostileSpecs(t *testing.T) {
	hostile := []struct {
		name, spec string
	}{
		{"duplicate edge", "0-1 0-1"},
		{"reversed duplicate", "0-1 1-0"},
		{"negative id", "-1-2"},
		{"overflowing id", "0-99999999999999999999"},
		{"self-loop with context", "0-1 1-1"},
		{"disconnected pair", "0-1 2-3"},
		{"unicode dash", "0–1"},
		{"arabic digits", "٠-١"},
	}
	for _, h := range hostile {
		if tr, err := Parse("h", h.spec); err == nil {
			t.Errorf("Parse accepted %s %q: %v", h.name, h.spec, tr)
		}
	}
	// A 65-vertex path exceeds the 64-color ceiling and must be refused.
	var b strings.Builder
	for i := 0; i < 64; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d-%d", i, i+1)
	}
	if _, err := Parse("long", b.String()); err == nil {
		t.Error("Parse accepted a 65-vertex path (above the 64-color ceiling)")
	}
	// The 64-vertex path is the boundary and must still parse.
	var ok strings.Builder
	for i := 0; i < 63; i++ {
		if i > 0 {
			ok.WriteByte(' ')
		}
		fmt.Fprintf(&ok, "%d-%d", i, i+1)
	}
	if tr, err := Parse("max", ok.String()); err != nil || tr.K() != 64 {
		t.Errorf("64-vertex path: %v, %v", tr, err)
	}
}

func TestConstructors(t *testing.T) {
	p := Path(5)
	if p.K() != 5 || p.Degree(0) != 1 || p.Degree(2) != 2 {
		t.Fatal("Path wrong")
	}
	s := Star(6)
	if s.K() != 6 || s.Degree(0) != 5 {
		t.Fatal("Star wrong")
	}
	sp := Spider(2, 2, 2)
	if sp.K() != 7 || sp.Degree(0) != 3 {
		t.Fatal("Spider wrong")
	}
}

func TestCanonicalRootedDistinguishes(t *testing.T) {
	p := Path(4)
	// Rooted at an end vs at an inner vertex must differ.
	if p.CanonicalRooted(0) == p.CanonicalRooted(1) {
		t.Fatal("rooted encodings should differ by root position")
	}
	// Symmetric roots must agree.
	if p.CanonicalRooted(0) != p.CanonicalRooted(3) {
		t.Fatal("symmetric roots should agree")
	}
	if p.CanonicalRooted(1) != p.CanonicalRooted(2) {
		t.Fatal("symmetric inner roots should agree")
	}
}

func TestCanonicalFreeInvariance(t *testing.T) {
	// The same tree with scrambled vertex numbering must keep its code.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(11)
		tr := randomTree(rng, k)
		perm := rng.Perm(k)
		edges := make([][2]int, 0, k-1)
		for _, e := range tr.Edges() {
			edges = append(edges, [2]int{perm[e[0]], perm[e[1]]})
		}
		scrambled := MustTree("s", k, edges, nil)
		return tr.CanonicalFree() == scrambled.CanonicalFree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randomTree(rng *rand.Rand, k int) *Template {
	edges := make([][2]int, 0, k-1)
	for v := 1; v < k; v++ {
		edges = append(edges, [2]int{rng.Intn(v), v})
	}
	return MustTree("r", k, edges, nil)
}

func TestCanonicalFreeLabeled(t *testing.T) {
	a := MustTree("a", 3, [][2]int{{0, 1}, {1, 2}}, []int32{1, 2, 1})
	b := MustTree("b", 3, [][2]int{{0, 1}, {1, 2}}, []int32{1, 2, 3})
	c := MustTree("c", 3, [][2]int{{2, 1}, {1, 0}}, []int32{1, 2, 1})
	if a.CanonicalFree() == b.CanonicalFree() {
		t.Fatal("different labelings should differ")
	}
	if a.CanonicalFree() != c.CanonicalFree() {
		t.Fatal("isomorphic labeled trees should agree")
	}
}

func TestCentroids(t *testing.T) {
	if c := Path(5).Centroids(); len(c) != 1 || c[0] != 2 {
		t.Fatalf("P5 centroids = %v, want [2]", c)
	}
	if c := Path(4).Centroids(); len(c) != 2 || c[0] != 1 || c[1] != 2 {
		t.Fatalf("P4 centroids = %v, want [1 2]", c)
	}
	if c := Star(7).Centroids(); len(c) != 1 || c[0] != 0 {
		t.Fatalf("S7 centroids = %v, want [0]", c)
	}
	if c := MustTree("k1", 1, nil, nil).Centroids(); len(c) != 1 || c[0] != 0 {
		t.Fatalf("K1 centroids = %v", c)
	}
	// Double star: both centers are centroids.
	if c := MustNamed("U10-2").Centroids(); len(c) != 2 {
		t.Fatalf("U10-2 centroids = %v, want two", c)
	}
}

func TestAutomorphismsKnownValues(t *testing.T) {
	cases := []struct {
		tpl  *Template
		want int64
	}{
		{MustTree("k1", 1, nil, nil), 1},
		{Path(2), 2},
		{Path(3), 2},
		{Path(7), 2},
		{Star(4), 6},   // 3!
		{Star(7), 720}, // 6!
		{Spider(2, 2, 2), 6},
		{Spider(2, 1, 1), 2},
		{MustNamed("U10-2"), 2 * 24 * 24}, // swap centers × 4! leaves each
	}
	for _, c := range cases {
		if got := c.tpl.Automorphisms(); got != c.want {
			t.Errorf("Aut(%s) = %d, want %d", c.tpl.Name(), got, c.want)
		}
	}
}

// TestAutomorphismsSaturate pins the overflow contract: exact up to 20!
// (the largest factorial an int64 holds), saturated at MaxInt64 beyond —
// never wrapped negative. Found by FuzzParse on a 24-leaf near-star.
func TestAutomorphismsSaturate(t *testing.T) {
	if got := Star(21).Automorphisms(); got != 2432902008176640000 { // 20!
		t.Errorf("Aut(S20) = %d, want 20!", got)
	}
	for _, k := range []int{22, 25, 64} {
		if got := Star(k).Automorphisms(); got != math.MaxInt64 {
			t.Errorf("Aut(star %d) = %d, want saturation at MaxInt64", k, got)
		}
	}
}

func TestAutomorphismsLabeled(t *testing.T) {
	// A star whose leaves all share a label keeps the full leaf symmetry;
	// distinct leaf labels kill it.
	same, _ := Star(5).WithLabels("s", []int32{0, 1, 1, 1, 1})
	diff, _ := Star(5).WithLabels("d", []int32{0, 1, 2, 3, 4})
	if got := same.Automorphisms(); got != 24 {
		t.Errorf("uniform star aut = %d, want 24", got)
	}
	if got := diff.Automorphisms(); got != 1 {
		t.Errorf("distinct star aut = %d, want 1", got)
	}
	// Two-centroid labeled case: path of 2 with equal vs distinct labels.
	eq, _ := Path(2).WithLabels("e", []int32{3, 3})
	ne, _ := Path(2).WithLabels("n", []int32{3, 4})
	if eq.Automorphisms() != 2 || ne.Automorphisms() != 1 {
		t.Error("labeled P2 automorphisms wrong")
	}
}

// TestAutomorphismsBruteForce cross-checks the divide-and-conquer count
// against brute-force permutation checking on all trees up to 7 vertices.
func TestAutomorphismsBruteForce(t *testing.T) {
	for k := 1; k <= 7; k++ {
		for _, tr := range AllTrees(k) {
			want := bruteAut(tr)
			if got := tr.Automorphisms(); got != want {
				t.Errorf("Aut(%s k=%d) = %d, brute force %d", tr.Name(), k, got, want)
			}
		}
	}
}

func bruteAut(tr *Template) int64 {
	k := tr.K()
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	adj := make(map[[2]int]bool)
	for _, e := range tr.Edges() {
		adj[[2]int{e[0], e[1]}] = true
		adj[[2]int{e[1], e[0]}] = true
	}
	var count int64
	var recurse func(i int)
	used := make([]bool, k)
	cur := make([]int, k)
	recurse = func(i int) {
		if i == k {
			for e := range adj {
				if !adj[[2]int{cur[e[0]], cur[e[1]]}] {
					return
				}
			}
			count++
			return
		}
		for v := 0; v < k; v++ {
			if !used[v] {
				used[v] = true
				cur[i] = v
				recurse(i + 1)
				used[v] = false
			}
		}
	}
	recurse(0)
	return count
}

func TestOrbits(t *testing.T) {
	// P4: ends form one orbit, middles another.
	orbits := Path(4).Orbits()
	if len(orbits) != 2 {
		t.Fatalf("P4 orbits = %v", orbits)
	}
	// Star: center alone, leaves together.
	orbits = Star(6).Orbits()
	if len(orbits) != 2 || len(orbits[0]) != 1 || len(orbits[1]) != 5 {
		t.Fatalf("S6 orbits = %v", orbits)
	}
	// U5-2 central orbit: the degree-3 vertex is alone in its orbit.
	u52 := MustNamed("U5-2")
	var center []int
	for _, o := range u52.Orbits() {
		if u52.Degree(o[0]) == 3 {
			center = o
		}
	}
	if len(center) != 1 {
		t.Fatalf("U5-2 degree-3 orbit = %v, want singleton", center)
	}
}

func TestOrbitSizesSumToK(t *testing.T) {
	for _, tr := range AllTrees(7) {
		total := 0
		for _, o := range tr.Orbits() {
			total += len(o)
		}
		if total != 7 {
			t.Fatalf("%s orbit sizes sum to %d", tr.Name(), total)
		}
	}
}

func TestIsIsomorphic(t *testing.T) {
	if !IsIsomorphic(Path(5), MustTree("p", 5, [][2]int{{4, 2}, {2, 0}, {0, 1}, {1, 3}}, nil)) {
		t.Fatal("relabeled path not recognized")
	}
	if IsIsomorphic(Path(5), Star(5)) {
		t.Fatal("path and star confused")
	}
	if IsIsomorphic(Path(4), Path(5)) {
		t.Fatal("different sizes confused")
	}
}

func TestAllTreesCounts(t *testing.T) {
	want := []int{0, 1, 1, 1, 2, 3, 6, 11, 23, 47, 106, 235, 551}
	for k := 1; k <= 12; k++ {
		trees := AllTrees(k)
		if len(trees) != want[k] {
			t.Errorf("AllTrees(%d) = %d trees, want %d", k, len(trees), want[k])
		}
		if NumFreeTrees(k) != want[k] {
			t.Errorf("NumFreeTrees(%d) = %d, want %d", k, NumFreeTrees(k), want[k])
		}
	}
}

func TestAllTreesDistinctAndValid(t *testing.T) {
	trees := AllTrees(9)
	seen := map[string]bool{}
	for _, tr := range trees {
		if tr.K() != 9 {
			t.Fatalf("%s has %d vertices", tr.Name(), tr.K())
		}
		code := tr.CanonicalFree()
		if seen[code] {
			t.Fatalf("duplicate tree %s", tr.Name())
		}
		seen[code] = true
	}
}

func TestAllTreesDeterministicOrder(t *testing.T) {
	a := AllTrees(8)
	b := AllTrees(8)
	for i := range a {
		if a[i].CanonicalFree() != b[i].CanonicalFree() || a[i].Name() != b[i].Name() {
			t.Fatal("AllTrees ordering not deterministic")
		}
	}
}

func TestNamedTemplates(t *testing.T) {
	all := NamedTemplates()
	if len(all) != 10 {
		t.Fatalf("got %d named templates", len(all))
	}
	wantK := map[string]int{
		"U3-1": 3, "U3-2": 3, "U5-1": 5, "U5-2": 5, "U7-1": 7,
		"U7-2": 7, "U10-1": 10, "U10-2": 10, "U12-1": 12, "U12-2": 12,
	}
	for _, tr := range all {
		if tr.K() != wantK[tr.Name()] {
			t.Errorf("%s has %d vertices, want %d", tr.Name(), tr.K(), wantK[tr.Name()])
		}
	}
	if _, err := Named("U99-1"); err == nil {
		t.Fatal("unknown template accepted")
	}
	// Path variants really are paths.
	for _, n := range []string{"U3-1", "U5-1", "U7-1", "U10-1", "U12-1"} {
		tr := MustNamed(n)
		if !IsIsomorphic(tr, Path(tr.K())) {
			t.Errorf("%s is not a path", n)
		}
	}
	// U7-2 must have a nontrivial symmetry, as the paper exploits.
	if MustNamed("U7-2").Automorphisms() < 2 {
		t.Error("U7-2 should be symmetric")
	}
}

func TestWithLabels(t *testing.T) {
	base := Path(3)
	lab, err := base.WithLabels("lab", []int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !lab.Labeled() || lab.Label(1) != 2 || base.Labeled() {
		t.Fatal("WithLabels wrong")
	}
	if _, err := base.WithLabels("bad", []int32{1}); err == nil {
		t.Fatal("bad label count accepted")
	}
}

func TestDotExport(t *testing.T) {
	dot := MustNamed("U5-2").Dot()
	if !strings.Contains(dot, "graph") || strings.Count(dot, "--") != 4 {
		t.Fatalf("malformed template dot:\n%s", dot)
	}
	lab, _ := Path(3).WithLabels("l", []int32{5, 6, 7})
	if !strings.Contains(lab.Dot(), "L6") {
		t.Fatal("labels missing from dot")
	}
}
