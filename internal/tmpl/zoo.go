package tmpl

import (
	"fmt"
	"strconv"
	"strings"
)

// This file defines the size-3/4 motif zoo — the non-tree templates that
// dominate classical network-motif analysis — and the extended parser
// that accepts cycle/clique notation and general edge lists. Every zoo
// template has a matching closed-form counter in internal/exact
// (CountMotif), which serves as both an O(m·d) fast path and the
// independent oracle of the beyond-trees differential matrix.

// Cycle returns the cycle template C_k on k >= 3 vertices
// (0-1-...-(k-1)-0). Its treewidth is 2.
func Cycle(k int) (*Template, error) {
	if k < 3 {
		return nil, fmt.Errorf("tmpl: a cycle needs at least 3 vertices, got %d", k)
	}
	if k > 64 {
		return nil, fmt.Errorf("tmpl: template size %d unsupported (max 64)", k)
	}
	edges := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		edges = append(edges, [2]int{i, (i + 1) % k})
	}
	return NewGraph(fmt.Sprintf("C%d", k), k, edges, nil)
}

// maxCliqueK bounds clique templates: K_k has treewidth k-1, and the bag
// DP supports bags of at most maxBagVerts vertices (see Decompose), so
// only K_3 and K_4 are countable today. The parser still builds larger
// cliques so the decomposition's treewidth rejection is exercised end to
// end, but caps them well below 64 to keep hostile inputs cheap.
const maxCliqueK = 16

// Clique returns the complete template K_k on k >= 3 vertices. K_3 and
// K_4 run through the bag DP; larger cliques parse but are rejected at
// decomposition time (treewidth k-1).
func Clique(k int) (*Template, error) {
	if k < 3 {
		return nil, fmt.Errorf("tmpl: a clique needs at least 3 vertices, got %d", k)
	}
	if k > maxCliqueK {
		return nil, fmt.Errorf("tmpl: clique size %d unsupported (max %d)", k, maxCliqueK)
	}
	edges := make([][2]int, 0, k*(k-1)/2)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return NewGraph(fmt.Sprintf("K%d", k), k, edges, nil)
}

// Triangle returns the 3-cycle C_3 = K_3.
func Triangle() *Template {
	t, _ := Cycle(3)
	t.name = "triangle"
	return t
}

// Diamond returns the chordal 4-cycle (K_4 minus one edge): vertices 0,1
// form the chord, each adjacent to both 2 and 3. |Aut| = 4.
func Diamond() *Template {
	return MustGraph("diamond", 4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}}, nil)
}

// TailedTriangle returns the "paw": a triangle 0-1-2 with a pendant
// vertex 3 attached to 0. |Aut| = 2 (swapping 1 and 2).
func TailedTriangle() *Template {
	return MustGraph("tailed-triangle", 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}}, nil)
}

// ZooNames lists the size-3/4 motif zoo in canonical order. Each name is
// accepted by Zoo, ParseGraph, and exact.CountMotif.
func ZooNames() []string {
	return []string{"triangle", "path3", "star3", "c4", "diamond", "tailed-triangle", "k4"}
}

// Zoo returns the named motif-zoo template: "triangle" (C3), "path3"
// (the 3-vertex path), "star3" (the claw K_{1,3} on 4 vertices), "c4"
// (the 4-cycle), "diamond" (chordal 4-cycle), "tailed-triangle" (the
// paw), and "k4" (the 4-clique).
func Zoo(name string) (*Template, error) {
	switch name {
	case "triangle":
		return Triangle(), nil
	case "path3":
		return Path(3), nil
	case "star3":
		return Star(4), nil
	case "c4":
		t, err := Cycle(4)
		if err != nil {
			return nil, err
		}
		t.name = "c4"
		return t, nil
	case "diamond":
		return Diamond(), nil
	case "tailed-triangle", "paw":
		return TailedTriangle(), nil
	case "k4":
		t, err := Clique(4)
		if err != nil {
			return nil, err
		}
		t.name = "k4"
		return t, nil
	}
	return nil, fmt.Errorf("tmpl: unknown zoo motif %q (want one of %s)", name, strings.Join(ZooNames(), ", "))
}

// MustZoo is Zoo for known-valid names; it panics on error.
func MustZoo(name string) *Template {
	t, err := Zoo(name)
	if err != nil {
		panic(err)
	}
	return t
}

// ParseGraph builds a (possibly non-tree) template from a spec string:
// a zoo motif name ("triangle", "c4", "diamond", "tailed-triangle",
// "k4", ...), cycle notation "cK" / "cycle:K", clique notation "kK" /
// "clique:K", or a general edge list such as "0-1 1-2 2-0". Tree specs
// yield tree templates, so ParseGraph is a strict superset of Parse.
func ParseGraph(name, s string) (*Template, error) {
	spec := strings.TrimSpace(s)
	if spec == "" {
		return nil, fmt.Errorf("tmpl: empty template spec")
	}
	lower := strings.ToLower(spec)
	if t, err := Zoo(lower); err == nil {
		if name != "" {
			t.name = name
		}
		return t, nil
	}
	if k, ok := notationSize(lower, "c", "cycle:"); ok {
		t, err := Cycle(k)
		if err != nil {
			return nil, err
		}
		if name != "" {
			t.name = name
		}
		return t, nil
	}
	if k, ok := notationSize(lower, "k", "clique:"); ok {
		t, err := Clique(k)
		if err != nil {
			return nil, err
		}
		if name != "" {
			t.name = name
		}
		return t, nil
	}
	edges, k, err := scanEdges(spec)
	if err != nil {
		return nil, err
	}
	return NewGraph(name, k, edges, nil)
}

// notationSize matches "c5"/"cycle:5"-style compact notation and returns
// the size. A bare short prefix with a valid integer is required; other
// strings fall through to edge-list parsing.
func notationSize(spec, short, long string) (int, bool) {
	var num string
	switch {
	case strings.HasPrefix(spec, long):
		num = strings.TrimPrefix(spec, long)
	case strings.HasPrefix(spec, short) && len(spec) > len(short):
		num = strings.TrimPrefix(spec, short)
	default:
		return 0, false
	}
	k, err := strconv.Atoi(num)
	if err != nil {
		return 0, false
	}
	return k, true
}
