package tmpl

import (
	"fmt"
	"math"
	"sort"
)

// mulAutSat multiplies two positive automorphism counts, saturating at
// math.MaxInt64 instead of wrapping. Legal templates can be
// astronomically symmetric — a 64-vertex star has 63! ≈ 2e87
// automorphisms — so the exact product does not always fit an int64;
// counts stay exact for every template whose symmetry is small enough
// to matter and stay positive for the rest (a wrap to a negative count
// was found by FuzzParse, testdata twin ac3a3e43813ceb2d).
func mulAutSat(a, b int64) int64 {
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// CanonicalRooted returns the AHU canonical encoding of the template
// rooted at root. Two rooted (optionally labeled) trees are isomorphic iff
// their encodings are equal. Labels participate in the encoding, so
// labeled templates only match when labels agree. Tree templates only
// (AHU codes have no cheap general-graph analogue; non-tree callers use
// IsIsomorphic, which branches to a backtracking search).
func (t *Template) CanonicalRooted(root int) string {
	t.mustTree("CanonicalRooted")
	return t.encode(root, -1)
}

// mustTree guards the AHU-based entry points, which recurse by
// parent-skipping and would loop forever on a cycle.
func (t *Template) mustTree(fn string) {
	if !t.tree {
		panic(fmt.Sprintf("tmpl: %s requires a tree template (got %s with %d edges on %d vertices)", fn, t.name, t.NumEdges(), t.K()))
	}
}

func (t *Template) encode(v, parent int) string {
	kids := make([]string, 0, len(t.adj[v]))
	for _, u := range t.adj[v] {
		if int(u) != parent {
			kids = append(kids, t.encode(int(u), v))
		}
	}
	sort.Strings(kids)
	var sb []byte
	if t.labels != nil {
		sb = fmt.Appendf(sb, "%d", t.labels[v])
	}
	sb = append(sb, '(')
	for _, k := range kids {
		sb = append(sb, k...)
	}
	sb = append(sb, ')')
	return string(sb)
}

// Centroids returns the one or two centroid vertices of the tree: the
// vertices minimizing the maximum component size after their removal.
func (t *Template) Centroids() []int {
	k := t.K()
	if k == 1 {
		return []int{0}
	}
	size := make([]int, k)
	maxComp := make([]int, k)
	// Iterative post-order from 0 to compute subtree sizes.
	order := make([]int, 0, k)
	parent := make([]int, k)
	parent[0] = -1
	stack := []int{0}
	seen := make([]bool, k)
	seen[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for _, u := range t.adj[v] {
			if !seen[u] {
				seen[u] = true
				parent[u] = v
				stack = append(stack, int(u))
			}
		}
	}
	for i := k - 1; i >= 0; i-- {
		v := order[i]
		size[v] = 1
		maxComp[v] = 0
		for _, u := range t.adj[v] {
			if int(u) != parent[v] {
				size[v] += size[u]
				if size[u] > maxComp[v] {
					maxComp[v] = size[u]
				}
			}
		}
		if up := k - size[v]; up > maxComp[v] {
			maxComp[v] = up
		}
	}
	best := k
	for v := 0; v < k; v++ {
		if maxComp[v] < best {
			best = maxComp[v]
		}
	}
	var out []int
	for v := 0; v < k; v++ {
		if maxComp[v] == best {
			out = append(out, v)
		}
	}
	return out
}

// CanonicalFree returns a canonical encoding of the template as a free
// (unrooted) tree: the lexicographically smallest rooted encoding over its
// centroid(s). Two free trees are isomorphic iff their encodings match.
func (t *Template) CanonicalFree() string {
	t.mustTree("CanonicalFree")
	cs := t.Centroids()
	best := t.CanonicalRooted(cs[0])
	for _, c := range cs[1:] {
		if e := t.CanonicalRooted(c); e < best {
			best = e
		}
	}
	return best
}

// rootedAut returns the number of automorphisms of the subtree rooted at
// v (entered from parent) that fix the root: the product over all vertices
// of the factorials of multiplicities of isomorphic child subtrees. The
// returned encoding is the AHU code of the subtree, computed in the same
// pass.
func (t *Template) rootedAut(v, parent int) (string, int64) {
	type kid struct {
		code string
		aut  int64
	}
	kids := make([]kid, 0, len(t.adj[v]))
	for _, u := range t.adj[v] {
		if int(u) != parent {
			c, a := t.rootedAut(int(u), v)
			kids = append(kids, kid{c, a})
		}
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i].code < kids[j].code })
	aut := int64(1)
	run := int64(0)
	var sb []byte
	if t.labels != nil {
		sb = fmt.Appendf(sb, "%d", t.labels[v])
	}
	sb = append(sb, '(')
	for i, kd := range kids {
		aut = mulAutSat(aut, kd.aut)
		if i > 0 && kd.code == kids[i-1].code {
			run++
			aut = mulAutSat(aut, run+1)
		} else {
			run = 0
		}
		sb = append(sb, kd.code...)
	}
	sb = append(sb, ')')
	return string(sb), aut
}

// RootedAutomorphisms returns the number of automorphisms of the
// template that fix root (and, for labeled templates, preserve labels).
// Trees use the linear AHU multiplicity product; non-tree templates use
// the orbit-stabilizer chain with the root pre-fixed.
func (t *Template) RootedAutomorphisms(root int) int64 {
	if !t.tree {
		return t.generalAutomorphisms([]int{root})
	}
	_, a := t.rootedAut(root, -1)
	return a
}

// Automorphisms returns |Aut(T)| for the free (optionally labeled)
// template. For trees an automorphism either fixes the centroid
// (single-centroid case) or fixes/swaps the two centroids (two-centroid
// case; swapping is possible iff the two halves are isomorphic as rooted
// trees). Non-tree templates — where the sibling-subtree scan is
// meaningless — use the general orbit-stabilizer count (C4 = 8, K4 = 24,
// tailed triangle = 2, ...), which is what keeps the estimate's
// 1/|Aut| scale factor correct beyond trees.
func (t *Template) Automorphisms() int64 {
	if !t.tree {
		return t.generalAutomorphisms(nil)
	}
	cs := t.Centroids()
	if len(cs) == 1 {
		return t.RootedAutomorphisms(cs[0])
	}
	c1, c2 := cs[0], cs[1]
	code1, a1 := t.rootedAut(c1, c2)
	code2, a2 := t.rootedAut(c2, c1)
	if code1 == code2 {
		return mulAutSat(2, mulAutSat(a1, a2))
	}
	return mulAutSat(a1, a2)
}

// Orbits partitions the template vertices into automorphism orbits. Two
// tree vertices are in the same orbit iff the tree rooted at each has the
// same canonical encoding; non-tree templates fall back to pairwise
// automorphism searches. Each orbit lists its vertices ascending; orbits
// are ordered by smallest member.
func (t *Template) Orbits() [][]int {
	if !t.tree {
		return t.generalOrbits()
	}
	byCode := map[string][]int{}
	keys := make([]string, 0, t.K())
	for v := 0; v < t.K(); v++ {
		code := t.CanonicalRooted(v)
		if _, ok := byCode[code]; !ok {
			keys = append(keys, code)
		}
		byCode[code] = append(byCode[code], v)
	}
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, byCode[k])
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// IsIsomorphic reports whether two templates are isomorphic as free
// (optionally labeled) graphs. Tree pairs compare canonical AHU codes;
// pairs with a non-tree member use a backtracking isomorphism search
// (a tree is never isomorphic to a non-tree).
func IsIsomorphic(a, b *Template) bool {
	if a.K() != b.K() {
		return false
	}
	if a.tree != b.tree {
		return false
	}
	if !a.tree {
		return generalIsomorphic(a, b)
	}
	return a.CanonicalFree() == b.CanonicalFree()
}
