package tmpl

import "fmt"

// The paper benchmarks ten unlabeled templates: a simple path at each of
// 3, 5, 7, 10, and 12 vertices (U3-1, U5-1, U7-1, U10-1, U12-1) and a more
// complex structure at each size (U3-2, U5-2, U7-2, U10-2, U12-2), shown
// only as pictures in its Figure 2. The non-path shapes here are
// reconstructions consistent with everything the text states about them:
//
//   - U3-2: the only free tree on 3 vertices is the path, so U3-2 is the
//     same shape as U3-1 (the original also ships a triangle variant; we
//     restrict to trees, as the evaluation does).
//   - U5-2: has a central degree-3 vertex (Figure 15 uses "the central
//     orbit of the U5-2 template (vertex with degree of 3)"): the spider
//     with leg lengths (2, 1, 1).
//   - U7-2: has an "obvious" rooted automorphism exploited in §III-C: the
//     symmetric spider with three legs of length 2.
//   - U10-2: a symmetric double star (two adjacent centers, four leaves
//     each).
//   - U12-2: "explicitly designed to stress subtemplate partitioning": a
//     bushy balanced binary tree on 12 vertices, whose every cut leaves
//     large children on both sides.
var named = map[string]func() *Template{
	"U3-1":  func() *Template { return rename(Path(3), "U3-1") },
	"U3-2":  func() *Template { return rename(Star(3), "U3-2") },
	"U5-1":  func() *Template { return rename(Path(5), "U5-1") },
	"U5-2":  func() *Template { return rename(Spider(2, 1, 1), "U5-2") },
	"U7-1":  func() *Template { return rename(Path(7), "U7-1") },
	"U7-2":  func() *Template { return rename(Spider(2, 2, 2), "U7-2") },
	"U10-1": func() *Template { return rename(Path(10), "U10-1") },
	"U10-2": func() *Template {
		// Double star: centers 0-1, leaves 2..5 on 0 and 6..9 on 1.
		return MustTree("U10-2", 10, [][2]int{
			{0, 1},
			{0, 2}, {0, 3}, {0, 4}, {0, 5},
			{1, 6}, {1, 7}, {1, 8}, {1, 9},
		}, nil)
	},
	"U12-1": func() *Template { return rename(Path(12), "U12-1") },
	"U12-2": func() *Template {
		// Balanced binary tree: 0 root; 1,2 children; 3..6 grandchildren;
		// 7..11 great-grandchildren spread across the grandchildren.
		return MustTree("U12-2", 12, [][2]int{
			{0, 1}, {0, 2},
			{1, 3}, {1, 4}, {2, 5}, {2, 6},
			{3, 7}, {3, 8}, {4, 9}, {5, 10}, {6, 11},
		}, nil)
	},
}

func rename(t *Template, name string) *Template {
	t.name = name
	return t
}

// NamedTemplateNames lists the paper's template names in evaluation order.
var NamedTemplateNames = []string{
	"U3-1", "U3-2", "U5-1", "U5-2", "U7-1", "U7-2", "U10-1", "U10-2", "U12-1", "U12-2",
}

// Named returns one of the paper's templates by name (e.g. "U7-2").
func Named(name string) (*Template, error) {
	f, ok := named[name]
	if !ok {
		return nil, fmt.Errorf("tmpl: unknown template %q (have %v)", name, NamedTemplateNames)
	}
	return f(), nil
}

// MustNamed is Named for known-valid names; it panics on error.
func MustNamed(name string) *Template {
	t, err := Named(name)
	if err != nil {
		panic(err)
	}
	return t
}

// NamedTemplates returns all ten paper templates in evaluation order.
func NamedTemplates() []*Template {
	out := make([]*Template, 0, len(NamedTemplateNames))
	for _, n := range NamedTemplateNames {
		out = append(out, MustNamed(n))
	}
	return out
}
