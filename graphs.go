package fascia

import (
	"io"

	"repro/internal/gen"
	"repro/internal/graph"
)

// NewGraph builds a Graph over n vertices from an undirected edge list.
// Self-loops and duplicate edges are dropped; labels may be nil.
func NewGraph(n int, edges [][2]int32, labels []int32) (*Graph, error) {
	return graph.FromEdges(n, edges, labels)
}

// LoadGraph reads a graph file (text edge list, or binary CSR for ".bin").
func LoadGraph(path string) (*Graph, error) {
	return graph.LoadFile(path)
}

// MapGraph opens a graph file out-of-core: binary CSR files in the
// current (v2) format are memory-mapped read-only so the CSR arrays
// cost no heap and page in on demand — the loader half of the -mem
// out-of-core mode. Anything unmappable (text edge lists, legacy
// binaries, platforms without mmap) silently falls back to LoadGraph.
// Mapping trusts the file's adjacency payload; use LoadGraph for
// untrusted input. Release a mapped graph with g.Unmap().
func MapGraph(path string) (*Graph, error) {
	return graph.MapBinary(path)
}

// SaveGraph writes a graph file (text edge list, or binary CSR for ".bin").
func SaveGraph(path string, g *Graph) error {
	return graph.SaveFile(path, g)
}

// ReadGraph parses a text edge list from r.
func ReadGraph(r io.Reader) (*Graph, error) {
	return graph.ReadEdgeList(r)
}

// WriteGraph writes g as a text edge list to w.
func WriteGraph(w io.Writer, g *Graph) error {
	return graph.WriteEdgeList(w, g)
}

// GraphStats summarizes a graph's size and degrees.
type GraphStats = graph.Stats

// NetworkPreset describes one of the paper's ten evaluation networks and
// the synthetic model standing in for it (see DESIGN.md §3).
type NetworkPreset = gen.Preset

// Networks lists the ten network presets of the paper's Table I.
func Networks() []NetworkPreset { return gen.Presets }

// Network returns a network preset by name (e.g. "portland", "enron",
// "gnp", "slashdot", "paroad", "circuit", "ecoli", "scerevisiae",
// "hpylori", "celegans").
func Network(name string) (NetworkPreset, error) { return gen.ByName(name) }

// Generate builds the named preset network at the given scale (1.0 =
// paper-sized) with a deterministic seed, returning its largest connected
// component. It panics on unknown names; use Network for error handling.
func Generate(name string, scale float64, seed int64) *Graph {
	p, err := gen.ByName(name)
	if err != nil {
		panic(err)
	}
	return p.Build(scale, seed)
}

// AssignRandomLabels attaches uniform pseudo-random vertex labels in
// [0, numLabels) to g in place and returns g (the paper's labeled-network
// methodology, 8 labels for Portland).
func AssignRandomLabels(g *Graph, numLabels int, seed int64) *Graph {
	return gen.AssignLabels(g, numLabels, seed)
}

// ErdosRenyi generates a G(n, m) random graph.
func ErdosRenyi(n int, m int64, seed int64) *Graph {
	return gen.ErdosRenyiM(n, m, seed)
}

// BarabasiAlbert generates a preferential-attachment graph where each new
// vertex attaches to mPer existing vertices.
func BarabasiAlbert(n, mPer int, seed int64) *Graph {
	return gen.BarabasiAlbert(n, mPer, seed)
}

// WattsStrogatz generates a small-world ring-lattice graph.
func WattsStrogatz(n, kNear int, beta float64, seed int64) *Graph {
	return gen.WattsStrogatz(n, kNear, beta, seed)
}
