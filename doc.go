// Package fascia is a from-scratch Go reproduction of FASCIA ("Fast
// Approximate Subgraph Counting and Enumeration", Slota & Madduri, ICPP
// 2013): approximate counting of non-induced occurrences of tree
// templates in large undirected graphs via the color-coding technique of
// Alon, Yuster and Zwick, with the paper's combinatorial indexing, memory
// optimizations, partitioning heuristics, and shared-memory parallelism.
//
// # Quick start
//
//	g := fascia.Generate("enron", 0.1, 1)      // synthetic Enron-like network
//	t := fascia.MustTemplate("U7-1")           // 7-vertex path template
//	res, err := fascia.Count(g, t, fascia.DefaultOptions().WithIterations(100))
//	// res.Count ≈ number of non-induced occurrences of t in g
//
// The package also exposes motif finding over all trees of a given size
// (MotifProfile), graphlet degree distributions and GDD agreement
// (GraphletDegrees, GDDAgreement), exact baselines (ExactCount,
// EnumerateAllTrees), and colorful-embedding sampling (SampleEmbeddings).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure of the paper.
package fascia
