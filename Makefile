# Developer entry points. `make ci` is the tier-1+ verification gate:
# the strict-build matrix (fasciavet's nine analyzers with stale-
# suppression detection, go vet, a checkptr-instrumented build, race
# coverage of the concurrent packages), full tests, the cancellation
# tests (which exercise mid-run aborts in every parallel mode), the
# oracle-differential harness under -race, the metrics-endpoint,
# fasciad serve, and multi-process shard smoke tests, a fuzz smoke pass
# over every fuzz target, a coverage floor on internal/serve, and a
# one-shot smoke run of the kernel benchmarks (compiles and exercises
# the direct/aggregate/auto matrix without timing anything meaningful).

GO ?= go
FUZZTIME ?= 30s

.PHONY: ci lint lint-strict vet build test race race-cancel difftest difftest-nontree fuzz-smoke serve-smoke shard-smoke cover-serve cover-motif metrics-smoke bench-smoke bench-kernel bench-batch bench-tile bench-batch-full bench-batch-record bench-mem bench-mem-full bench-mem-record bench-adaptive check-bce check-escape check-checkptr

ci: lint-strict build check-bce check-escape test race-cancel difftest difftest-nontree metrics-smoke serve-smoke shard-smoke cover-serve cover-motif fuzz-smoke bench-smoke bench-batch bench-tile bench-mem bench-adaptive

# The strict-build matrix, first in `make ci`: fasciavet's analyzers
# (any finding or stale suppression fails), go vet, a fresh-cache build
# with the checkptr unsafe-pointer instrumentation, and the race tier.
# Everything here is a *build-time* gate — it runs before the slower
# end-to-end smoke targets get a chance to hide a regression.
lint-strict: lint vet check-checkptr race

# fasciavet, the project-specific static analyzer (determinism-critical
# map iteration, cancellation polling, fingerprint/cache-key coverage,
# CSR immutability, guarded-by mutex discipline, wire-length taint
# tracking, hotpath allocation rules, goroutine-exit reachability,
# float-accumulation ordering — see DESIGN.md §8), plus gofmt
# cleanliness. Any finding fails the build; suppressions require an
# inline reason (//lint:<analyzer> ok — <reason>) and a suppression
# that no longer matches a finding fails too (-unused-suppressions).
lint:
	$(GO) run ./cmd/fasciavet -unused-suppressions ./...
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "lint: gofmt needed on:"; echo "$$fmt"; exit 1; fi

vet:
	$(GO) vet ./...

# Compile the whole tree with checkptr instrumentation in a throwaway
# build cache (mirroring check-bce: diagnostics and instrumentation
# only happen when compilation actually runs). This catches invalid
# unsafe.Pointer alignment/arithmetic at compile time and instruments
# the rest for the race tier, which runs with checkptr enabled.
check-checkptr:
	@tmp=$$(mktemp -d); \
	GOCACHE=$$tmp $(GO) build -gcflags=all=-d=checkptr ./... || { rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; \
	echo "check-checkptr: tree compiles under -d=checkptr"

# Escape-analysis gate for //fascia:hotpath functions: fasciavet
# -escape recompiles the kernel packages with -gcflags=-m under a fresh
# GOCACHE and fails if the compiler reports a heap escape inside any
# annotated range (the static hotalloc rules are necessary; the
# compiler's verdict is sufficient).
check-escape:
	$(GO) run ./cmd/fasciavet -escape ./internal/dp ./internal/table

build:
	$(GO) build ./...

# Bounds-check-elimination gate for the hot 8-wide lane loops: recompile
# internal/table and internal/dp with the BCE debug pass in a throwaway
# build cache (diagnostics only print when compilation actually runs)
# and fail if any `Found IsInBounds` lands in the named kernel files.
# `IsSliceInBounds` on the slice-reslicing setup lines is expected and
# allowed; the 8-wide array-pointer loops themselves must stay clean.
check-bce:
	@tmp=$$(mktemp -d); \
	out=$$(GOCACHE=$$tmp $(GO) build -gcflags='-d=ssa/check_bce' ./internal/table ./internal/dp 2>&1); \
	rm -rf $$tmp; \
	bad=$$(echo "$$out" | grep 'Found IsInBounds' | grep -E 'lane8\.go|bulk8\.go' || true); \
	if [ -n "$$bad" ]; then echo "check-bce: bounds checks reappeared in hot kernels:"; echo "$$bad"; exit 1; fi; \
	echo "check-bce: hot kernel lane loops are bounds-check free"

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dp ./internal/table ./internal/dist ./internal/shard ./internal/serve

# Cancellation paths under the race detector: the dp context tests (all
# three parallel modes, goroutine-leak checked) and the public-API
# cancel/timeout tests in the root package.
race-cancel:
	$(GO) test -race -run 'Context|Cancel|Timeout|OnIteration' . ./internal/dp

# Oracle-differential harness under the race detector: every public
# counting entry point against internal/exact, every option combination
# against the reference configuration bit for bit.
difftest:
	$(GO) test -race -run TestOracleDifferential .

# The non-tree three-way matrix under the race detector, runnable on its
# own: tree-decomposition bag DP within 6σ of the closed-form motif
# counters, motif counters exactly equal to backtracking, the bag DP's
# colorful totals exactly equal to rainbow enumeration — across every
# layout × kernel × batch × parallel-mode combination. (Also part of
# `make difftest`, which matches the whole TestOracleDifferential
# prefix.)
difftest-nontree:
	$(GO) test -race -run TestOracleDifferentialNonTree .

# One short fuzzing pass per target (seeds + $(FUZZTIME) of new inputs
# each). Targets run one at a time because `go test -fuzz` requires a
# single match per invocation.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadEdgeList -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzReadBinary -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/tmpl
	$(GO) test -run='^$$' -fuzz=FuzzParseGraph -fuzztime=$(FUZZTIME) ./internal/tmpl
	$(GO) test -run='^$$' -fuzz=FuzzTilePlan -fuzztime=$(FUZZTIME) ./internal/dp
	$(GO) test -run='^$$' -fuzz=FuzzSuccinctRow -fuzztime=$(FUZZTIME) ./internal/table

# fasciad end to end under -race: boot on an ephemeral port, count,
# cache hit, residual overlap, SIGTERM drain, goroutine-leak check.
serve-smoke:
	$(GO) test -race -run TestServeSmoke ./cmd/fasciad

# The sharded tier end to end across real processes: a coordinator and
# three shard workers over TCP, one worker SIGKILLed mid-run (forcing a
# re-dispatch to the survivors), the result asserted bit-identical to
# the single-process engine, SIGTERM drains on both tiers.
shard-smoke:
	$(GO) test -count=1 -run TestShardSmoke ./cmd/fasciad

# Coverage floor for the serving layer: fail CI if internal/serve drops
# below 80% statement coverage.
cover-serve:
	@cov=$$($(GO) test -cover ./internal/serve | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
	if [ -z "$$cov" ]; then echo "cover-serve: tests failed or no coverage reported"; exit 1; fi; \
	ok=$$(awk -v c="$$cov" 'BEGIN { print (c >= 80.0) ? 1 : 0 }'); \
	if [ "$$ok" != 1 ]; then echo "cover-serve: internal/serve coverage $$cov% below the 80% floor"; exit 1; fi; \
	echo "cover-serve: internal/serve coverage $$cov% (floor 80%)"

# Coverage floor for the non-tree counting layer: the closed-form motif
# counters (internal/exact/motifs.go) and the tree-decomposition bag DP
# (internal/dp/bag.go) must each stay >= 80% statement-covered by their
# packages' tests. Computed per file from the cover profiles, since the
# package-level numbers would let an untested new file hide behind
# well-covered neighbors.
cover-motif:
	@tmp=$$(mktemp -d); \
	$(GO) test -coverprofile=$$tmp/exact.out ./internal/exact >/dev/null || { rm -rf $$tmp; exit 1; }; \
	$(GO) test -coverprofile=$$tmp/dp.out ./internal/dp >/dev/null || { rm -rf $$tmp; exit 1; }; \
	fail=0; \
	for spec in "internal/exact/motifs.go $$tmp/exact.out" "internal/dp/bag.go $$tmp/dp.out"; do \
	  set -- $$spec; file=$$1; prof=$$2; \
	  cov=$$(awk -v f="$$file:" 'index($$1, f) { total += $$2; if ($$3 > 0) covered += $$2 } END { if (total == 0) print "none"; else printf "%.1f", 100 * covered / total }' $$prof); \
	  if [ "$$cov" = none ]; then echo "cover-motif: no statements for $$file in $$prof"; fail=1; continue; fi; \
	  ok=$$(awk -v c="$$cov" 'BEGIN { print (c >= 80.0) ? 1 : 0 }'); \
	  if [ "$$ok" != 1 ]; then echo "cover-motif: $$file coverage $$cov% below the 80% floor"; fail=1; \
	  else echo "cover-motif: $$file coverage $$cov% (floor 80%)"; fi; \
	done; \
	rm -rf $$tmp; exit $$fail

# The -metrics-addr expvar/pprof endpoint end to end on an ephemeral port.
metrics-smoke:
	$(GO) test -run TestMetricsSmoke ./cmd/fascia

bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkKernel -benchtime=1x ./internal/dp

# Batched-DP smoke: B=1 vs B=4 on a small graph with an equivalence
# assertion, so the CI run doubles as an end-to-end batched-vs-unbatched
# bit-identity check.
bench-batch:
	$(GO) test -run='^$$' -bench=BenchmarkBatchedDPSmall -benchtime=1x ./internal/dp

# Tiled-DP smoke: untiled vs a forced 2-column tiling at B=1 and B=4 on
# a small graph with an equivalence assertion, so the CI run doubles as
# an end-to-end tiled-vs-untiled bit-identity check.
bench-tile:
	$(GO) test -run='^$$' -bench=BenchmarkTiledDPSmall -benchtime=1x ./internal/dp

# Out-of-core smoke: a U7 run with dense tables on a 200k-vertex BA
# graph under a 96 MiB -mem budget and a Go heap limit. The benchmark
# asserts that slabs actually spilled, that whole-process peak RSS
# stayed under its ceiling, and that the budgeted estimates are
# bit-identical to an unbudgeted run.
bench-mem:
	GOMEMLIMIT=256MiB $(GO) test -run='^$$' -bench=BenchmarkMemBudgetSmoke -benchtime=1x ./internal/dp

# Adaptive-stopping smoke: a U7 run on a 50k-vertex BA graph driven to
# a 1% relative-stderr target with a far-higher iteration cap. The
# benchmark asserts the run converges strictly before the cap with the
# target met, and reports the iteration-savings factor.
bench-adaptive:
	$(GO) test -run='^$$' -bench=BenchmarkAdaptiveStopSmoke -benchtime=1x ./internal/dp

# The acceptance-scale out-of-core comparison (U10 on a million-vertex
# BA graph, budgeted vs unbudgeted). Slow and memory-hungry.
bench-mem-full:
	$(GO) test -run='^$$' -bench='BenchmarkMemBudget$$' -benchtime=1x -timeout=2h ./internal/dp

# Record a BENCH_mem.json trajectory entry with the documented noise
# methodology (>= 5 samples after a discarded warmup, MAD outlier drop,
# medians of the survivors); appends, never overwrites. Slow.
bench-mem-record:
	$(GO) run ./cmd/fasciabench bench-mem-record

# Full kernel comparison (the numbers quoted in DESIGN.md "DP kernels").
bench-kernel:
	$(GO) test -run='^$$' -bench=BenchmarkKernelDirectVsAggregate -benchtime=10x -count=3 ./internal/dp

# The acceptance benchmark behind BENCH_batch.json (slow: 100k-vertex
# graphs, k=7, the full lane-width sweep, three samples).
bench-batch-full:
	$(GO) test -run='^$$' -bench='BenchmarkBatchedDP/' -benchtime=1x -count=3 ./internal/dp

# Record a BENCH_batch.json trajectory entry with the documented noise
# methodology (>= 5 samples after a discarded warmup, MAD outlier drop,
# medians of the survivors); appends, never overwrites. Slow.
bench-batch-record:
	$(GO) run ./cmd/fasciabench bench-batch-record
