# Developer entry points. `make ci` is the tier-1+ verification gate:
# vet, build, full tests, race coverage of the concurrent packages, and
# a one-shot smoke run of the kernel benchmarks (compiles and exercises
# the direct/aggregate/auto matrix without timing anything meaningful).

GO ?= go

.PHONY: ci vet build test race bench-smoke bench-kernel

ci: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dp ./internal/table

bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkKernel -benchtime=1x ./internal/dp

# Full kernel comparison (the numbers quoted in DESIGN.md "DP kernels").
bench-kernel:
	$(GO) test -run='^$$' -bench=BenchmarkKernelDirectVsAggregate -benchtime=10x -count=3 ./internal/dp
