# Developer entry points. `make ci` is the tier-1+ verification gate:
# vet, build, full tests, race coverage of the concurrent packages
# (including the cancellation tests, which exercise mid-run aborts in
# every parallel mode), the metrics-endpoint smoke test, and a one-shot
# smoke run of the kernel benchmarks (compiles and exercises the
# direct/aggregate/auto matrix without timing anything meaningful).

GO ?= go

.PHONY: ci vet build test race race-cancel metrics-smoke bench-smoke bench-kernel

ci: vet build test race race-cancel metrics-smoke bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dp ./internal/table ./internal/dist

# Cancellation paths under the race detector: the dp context tests (all
# three parallel modes, goroutine-leak checked) and the public-API
# cancel/timeout tests in the root package.
race-cancel:
	$(GO) test -race -run 'Context|Cancel|Timeout|OnIteration' . ./internal/dp

# The -metrics-addr expvar/pprof endpoint end to end on an ephemeral port.
metrics-smoke:
	$(GO) test -run TestMetricsSmoke ./cmd/fascia

bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkKernel -benchtime=1x ./internal/dp

# Full kernel comparison (the numbers quoted in DESIGN.md "DP kernels").
bench-kernel:
	$(GO) test -run='^$$' -bench=BenchmarkKernelDirectVsAggregate -benchtime=10x -count=3 ./internal/dp
