# Developer entry points. `make ci` is the tier-1+ verification gate:
# vet, build, full tests, race coverage of the concurrent packages
# (including the cancellation tests, which exercise mid-run aborts in
# every parallel mode), the metrics-endpoint smoke test, and a one-shot
# smoke run of the kernel benchmarks (compiles and exercises the
# direct/aggregate/auto matrix without timing anything meaningful).

GO ?= go

.PHONY: ci vet build test race race-cancel metrics-smoke bench-smoke bench-kernel bench-batch bench-batch-full

ci: vet build test race race-cancel metrics-smoke bench-smoke bench-batch

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dp ./internal/table ./internal/dist

# Cancellation paths under the race detector: the dp context tests (all
# three parallel modes, goroutine-leak checked) and the public-API
# cancel/timeout tests in the root package.
race-cancel:
	$(GO) test -race -run 'Context|Cancel|Timeout|OnIteration' . ./internal/dp

# The -metrics-addr expvar/pprof endpoint end to end on an ephemeral port.
metrics-smoke:
	$(GO) test -run TestMetricsSmoke ./cmd/fascia

bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkKernel -benchtime=1x ./internal/dp

# Batched-DP smoke: B=1 vs B=4 on a small graph with an equivalence
# assertion, so the CI run doubles as an end-to-end batched-vs-unbatched
# bit-identity check.
bench-batch:
	$(GO) test -run='^$$' -bench=BenchmarkBatchedDPSmall -benchtime=1x ./internal/dp

# Full kernel comparison (the numbers quoted in DESIGN.md "DP kernels").
bench-kernel:
	$(GO) test -run='^$$' -bench=BenchmarkKernelDirectVsAggregate -benchtime=10x -count=3 ./internal/dp

# The acceptance benchmark behind BENCH_batch.json (slow: 100k-vertex
# graphs, k=7, the full lane-width sweep, three samples).
bench-batch-full:
	$(GO) test -run='^$$' -bench='BenchmarkBatchedDP/' -benchtime=1x -count=3 ./internal/dp
