package fascia

import (
	"context"

	"repro/internal/enumerate"
	"repro/internal/exact"
	"repro/internal/gdd"
	"repro/internal/gen"
	"repro/internal/motif"
)

// ExactCount returns the exact number of non-induced occurrences of the
// template t (tree or not) in g by exhaustive backtracking — the paper's
// naïve baseline. Running time grows exponentially with t's size; use it
// on small graphs only.
func ExactCount(g *Graph, t *Template) int64 {
	return exact.Count(g, t)
}

// ExactMotifCount returns the exact non-induced count of a named zoo
// motif (see MotifZooNames) via a direct combinatorial counter — an
// oracle independent of both the color-coding DP and the backtracking
// searcher, and fast enough for large graphs.
func ExactMotifCount(g *Graph, name string) (int64, error) {
	return exact.CountMotif(g, name)
}

// ExactZooCounts returns exact counts of every zoo motif, in
// MotifZooNames order.
func ExactZooCounts(g *Graph) []int64 {
	return exact.ZooCounts(g)
}

// ExactVertexCounts returns, per vertex, the exact graphlet degree for
// the orbit of template vertex root: the number of occurrences containing
// the vertex at that orbit.
func ExactVertexCounts(g *Graph, t *Template, root int) []int64 {
	mapped := exact.CountRootedMappings(g, t, root)
	rAut := t.RootedAutomorphisms(root)
	out := make([]int64, len(mapped))
	for v, m := range mapped {
		out[v] = m / rAut
	}
	return out
}

// EnumerateExact calls visit for every mapping of t into g until visit
// returns false (exhaustive enumeration baseline).
func EnumerateExact(g *Graph, t *Template, visit func(mapping []int32) bool) {
	exact.Enumerate(g, t, visit)
}

// TreeCounts holds single-pass enumeration results for all trees of one
// size (the MODA-style simultaneous baseline).
type TreeCounts = enumerate.Counts

// EnumerateAllTrees counts, exactly and in a single enumeration pass, the
// occurrences of every free tree on k vertices — the reproduction's
// MODA-equivalent baseline for the §V-C comparison.
func EnumerateAllTrees(g *Graph, k int) (TreeCounts, error) {
	return enumerate.CountAllTrees(g, k)
}

// MotifProfile holds estimated counts for all free trees of one size in
// one network.
type MotifProfile = motif.Profile

// FindMotifs estimates occurrence counts for every free tree on k
// vertices using iters color-coding iterations per tree (Figures 11-14).
func FindMotifs(name string, g *Graph, k, iters int, opt Options) (MotifProfile, error) {
	return FindMotifsContext(context.Background(), name, g, k, iters, opt)
}

// FindMotifsContext is FindMotifs with cooperative cancellation, checked
// between templates and inside every per-template counting run.
func FindMotifsContext(ctx context.Context, name string, g *Graph, k, iters int, opt Options) (MotifProfile, error) {
	cfg, err := opt.config()
	if err != nil {
		return MotifProfile{}, err
	}
	return motif.FindContext(ctx, name, g, k, iters, cfg)
}

// MotifMeanRelativeError is the Figure 11 error metric: mean over trees
// of |estimate-exact|/exact.
func MotifMeanRelativeError(p MotifProfile, exactCounts []int64) (float64, error) {
	return motif.MeanRelativeError(p, exactCounts)
}

// MotifProfileDistance compares two networks' relative motif-frequency
// profiles (mean absolute log-ratio; 0 = identical signatures).
func MotifProfileDistance(a, b MotifProfile) (float64, error) {
	return motif.ProfileDistance(a, b)
}

// GraphletDistribution maps graphlet degrees to vertex counts.
type GraphletDistribution = gdd.Distribution

// GraphletDegrees computes the estimated graphlet degree distribution of
// g for the orbit of template vertex orbit, using iters iterations
// (Figure 15).
func GraphletDegrees(g *Graph, t *Template, orbit, iters int, opt Options) (GraphletDistribution, error) {
	return GraphletDegreesContext(context.Background(), g, t, orbit, iters, opt)
}

// GraphletDegreesContext is GraphletDegrees with cooperative cancellation
// of the underlying per-vertex counting run.
func GraphletDegreesContext(ctx context.Context, g *Graph, t *Template, orbit, iters int, opt Options) (GraphletDistribution, error) {
	opt.RootVertex = orbit
	opt.Iterations = iters
	e, err := NewEngine(g, t, opt)
	if err != nil {
		return nil, err
	}
	counts, err := e.VertexCountsContext(ctx, opt.iterations(t.K()))
	if err != nil {
		return nil, err
	}
	return gdd.FromVertexCounts(counts), nil
}

// ExactGraphletDegrees computes the exact graphlet degree distribution
// for the orbit of template vertex orbit.
func ExactGraphletDegrees(g *Graph, t *Template, orbit int) GraphletDistribution {
	return gdd.FromExactCounts(ExactVertexCounts(g, t, orbit))
}

// GDDAgreement returns the Pržulj graphlet-degree-distribution agreement
// between two distributions (1 = identical; Figure 16).
func GDDAgreement(a, b GraphletDistribution) float64 {
	return gdd.Agreement(a, b)
}

// EngineInternals exposes read-only diagnostics of an engine: the number
// of colors, the colorful probability used for scaling, and the
// automorphism count of the template.
func (e *Engine) EngineInternals() (colors int, colorfulProb float64, automorphisms int64) {
	return e.inner.Colors(), e.inner.ColorfulProbability(), e.inner.Automorphisms()
}

// ExactCountInduced returns the exact number of induced occurrences of
// the tree template (no extra edges allowed between image vertices — the
// Figure 1 distinction; color coding estimates the non-induced count).
func ExactCountInduced(g *Graph, t *Template) int64 {
	return exact.CountInduced(g, t)
}

// RewireGraph returns a degree-preserving randomization of g via double
// edge swaps — the standard null model for motif significance.
func RewireGraph(g *Graph, swaps int64, seed int64) *Graph {
	return gen.Rewire(g, swaps, seed)
}

// MotifSignificance holds motif z-scores against the degree-preserving
// null model.
type MotifSignificance = motif.Significance

// FindMotifSignificance estimates per-tree z-scores of g's motif counts
// against an ensemble of `samples` degree-preserving randomizations:
// positive z marks over-represented subgraphs (motifs in the classical
// Milo et al. sense the paper's §II-A references).
func FindMotifSignificance(name string, g *Graph, k, iters, samples int, opt Options) (MotifSignificance, error) {
	return FindMotifSignificanceContext(context.Background(), name, g, k, iters, samples, opt)
}

// FindMotifSignificanceContext is FindMotifSignificance with cooperative
// cancellation, checked between null-model samples and inside every
// counting run.
func FindMotifSignificanceContext(ctx context.Context, name string, g *Graph, k, iters, samples int, opt Options) (MotifSignificance, error) {
	cfg, err := opt.config()
	if err != nil {
		return MotifSignificance{}, err
	}
	return motif.FindSignificanceContext(ctx, name, g, k, iters, samples, cfg)
}

// MotifZooProfile holds exact counts of the size-3/4 motif zoo in one
// network.
type MotifZooProfile = motif.ZooProfile

// MotifZooSignificance holds motif-zoo z-scores against the
// degree-preserving null model, computed from exact counts on both
// sides — the non-tree counterpart of MotifSignificance.
type MotifZooSignificance = motif.ZooSignificance

// FindMotifZoo computes the exact motif-zoo profile of g via the
// closed-form counters (no sampling).
func FindMotifZoo(name string, g *Graph) MotifZooProfile {
	return motif.FindZoo(name, g)
}

// FindMotifZooSignificance computes exact zoo counts on g and an
// ensemble of `samples` degree-preserving randomizations, returning
// per-motif z-scores; positive z marks over-represented non-tree motifs
// such as triangles in clustered networks.
func FindMotifZooSignificance(name string, g *Graph, samples int, seed int64) (MotifZooSignificance, error) {
	return motif.FindZooSignificance(name, g, samples, seed)
}

// FindMotifZooSignificanceContext is FindMotifZooSignificance with
// cooperative cancellation, checked between null-model samples.
func FindMotifZooSignificanceContext(ctx context.Context, name string, g *Graph, samples int, seed int64) (MotifZooSignificance, error) {
	return motif.FindZooSignificanceContext(ctx, name, g, samples, seed)
}

// GraphletOrbit identifies one automorphism orbit of one template in a
// graphlet-degree-vector computation.
type GraphletOrbit = gdd.Orbit

// GraphletVectors holds per-vertex graphlet degree vectors across all
// orbits of a template family (the full Pržulj methodology; the paper's
// Figures 15-16 use a single orbit).
type GraphletVectors = gdd.GDV

// ComputeGraphletVectors estimates graphlet degree vectors for every
// orbit of every supplied template.
func ComputeGraphletVectors(g *Graph, templates []*Template, iters int, opt Options) (GraphletVectors, error) {
	return ComputeGraphletVectorsContext(context.Background(), g, templates, iters, opt)
}

// ComputeGraphletVectorsContext is ComputeGraphletVectors with
// cooperative cancellation, checked between orbits and inside every
// per-orbit counting run.
func ComputeGraphletVectorsContext(ctx context.Context, g *Graph, templates []*Template, iters int, opt Options) (GraphletVectors, error) {
	cfg, err := opt.config()
	if err != nil {
		return GraphletVectors{}, err
	}
	return gdd.ComputeGDVContext(ctx, g, templates, iters, cfg)
}

// GDVAgreement returns the arithmetic- and geometric-mean GDD agreements
// across all orbits of two graphlet-degree-vector sets.
func GDVAgreement(a, b GraphletVectors) (arith, geom float64, err error) {
	return gdd.AgreementGDV(a, b)
}
