// Command fasciavet is FASCIA's project-specific static-analysis
// driver. It loads every package in the module (stdlib go/parser +
// go/types only — no x/tools, no network) and runs five analyzers that
// mechanize the invariants the runtime test suite establishes:
//
//	maporder         no map iteration in determinism-critical packages
//	ctxpoll          vertex/iteration loops in ctx-taking dp functions must poll cancellation
//	fingerprintcover every Options field classified for the cache key
//	csrmut           no writes to shared CSR storage outside graph/gen
//	guardedby        '// guarded by <mu>' fields only touched under the lock
//
// Diagnostics print as file:line:col: analyzer: message and any finding
// exits non-zero. Suppress a finding on its line (or the line above)
// with a mandatory-reason comment:
//
//	//lint:<analyzer> ok — <reason>
//
// Usage:
//
//	go run ./cmd/fasciavet ./...
//	go run ./cmd/fasciavet ./internal/dp ./internal/serve
//
// Type-check errors in the tree are reported as warnings on stderr and
// do not stop analysis (the build gate owns compilability; fasciavet
// degrades to the well-typed subset rather than panicking).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to analyze")
	listAnalyzers := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *listAnalyzers {
		for _, a := range lint.All {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fatal(err)
	}

	for _, p := range pkgs {
		for _, terr := range p.TypeErrs {
			fmt.Fprintf(os.Stderr, "fasciavet: warning: typecheck %s: %v\n", p.Path, terr)
		}
	}

	diags := lint.Run(pkgs, lint.All)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fasciavet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fasciavet: %v\n", err)
	os.Exit(2)
}
