// Command fasciavet is FASCIA's project-specific static-analysis
// driver. It loads every package in the module (stdlib go/parser +
// go/types only — no x/tools, no network) and runs nine analyzers that
// mechanize the invariants the runtime test suite establishes:
//
//	maporder         no map iteration in determinism-critical packages
//	ctxpoll          vertex/iteration loops in ctx-taking dp functions must poll cancellation
//	fingerprintcover every Options field classified for the cache key
//	csrmut           no writes to shared CSR storage outside graph/gen
//	guardedby        '// guarded by <mu>' fields only touched under the lock
//	wiretrust        wire-decoded integers must pass a bounds comparison before
//	                 sizing a make, indexing, or bounding a read (interprocedural)
//	hotalloc         //fascia:hotpath functions must not heap-allocate
//	goleak           goroutines need a statically-reachable exit on
//	                 ctx.Done/stop/conn-close; context cancel funcs must be used
//	floatflow        float accumulation must not be ordered by map/sync.Map
//	                 iteration, unordered receives, or goroutine completion
//
// Diagnostics print as file:line:col: analyzer: message and any finding
// exits non-zero. Suppress a finding on its line (or the line above)
// with a mandatory-reason comment:
//
//	//lint:<analyzer> ok — <reason>
//
// Usage:
//
//	go run ./cmd/fasciavet ./...
//	go run ./cmd/fasciavet -json ./...
//	go run ./cmd/fasciavet -unused-suppressions ./...
//	go run ./cmd/fasciavet -escape ./internal/dp ./internal/table
//
// -json emits findings as a JSON array (file/line/col/analyzer/message)
// for editor and CI integration. -unused-suppressions additionally
// reports //lint: comments that match no finding — stale suppressions
// hide nothing and mislead readers, so they fail the run too. -escape
// compiles the requested packages with -gcflags=-m under a fresh
// GOCACHE (the check-bce technique: diagnostics only print when
// compilation actually runs) and cross-references every "escapes to
// heap" / "moved to heap" line against //fascia:hotpath function
// ranges, catching the allocations the static hotalloc rules cannot
// prove.
//
// Type-check errors in the tree are reported as warnings on stderr and
// do not stop analysis (the build gate owns compilability; fasciavet
// degrades to the well-typed subset rather than panicking).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to analyze")
	listAnalyzers := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	unusedSup := flag.Bool("unused-suppressions", false, "also report //lint: suppressions that match no finding")
	escape := flag.Bool("escape", false, "cross-check //fascia:hotpath functions against go build -gcflags=-m escape diagnostics (fresh GOCACHE)")
	flag.Parse()

	if *listAnalyzers {
		for _, a := range lint.All {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fatal(err)
	}

	for _, p := range pkgs {
		for _, terr := range p.TypeErrs {
			fmt.Fprintf(os.Stderr, "fasciavet: warning: typecheck %s: %v\n", p.Path, terr)
		}
	}

	diags, unused := lint.RunWithUnused(pkgs, lint.All)
	if *unusedSup {
		diags = append(diags, unused...)
	}
	if *escape {
		ediags, err := runEscapeCheck(root, lint.HotpathRanges(pkgs), flag.Args())
		if err != nil {
			fatal(err)
		}
		diags = append(diags, ediags...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}

	if *jsonOut {
		printJSON(diags)
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fasciavet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable finding shape: flat, stable field
// names, one object per finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(diags []lint.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags)) // empty array, not null, on a clean run
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// runEscapeCheck compiles the requested packages with -gcflags=-m under
// a fresh GOCACHE and matches the compiler's escape diagnostics against
// the //fascia:hotpath ranges. The fresh cache matters: cached packages
// compile silently, and a silent check is a check that always passes.
func runEscapeCheck(root string, ranges []lint.HotRange, patterns []string) ([]lint.Diagnostic, error) {
	if len(ranges) == 0 {
		return nil, nil
	}
	cache, err := os.MkdirTemp("", "fasciavet-escape-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(cache)
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	cmd.Env = append(os.Environ(), "GOCACHE="+cache)
	out, runErr := cmd.CombinedOutput()
	if runErr != nil {
		return nil, fmt.Errorf("go build -gcflags=-m failed: %v\n%s", runErr, out)
	}
	return lint.EscapeFindings(ranges, lint.ParseEscapeOutput(string(out))), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fasciavet: %v\n", err)
	os.Exit(2)
}
