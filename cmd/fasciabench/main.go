// Command fasciabench regenerates the tables and figures of the FASCIA
// paper's evaluation section (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	fasciabench table1            # Table I network statistics
//	fasciabench fig3 fig4         # one or more figures
//	fasciabench all               # everything, in paper order
//	fasciabench -full fig8        # paper-scale workloads (slow, big)
//	fasciabench -scale 0.2 fig10  # custom network scale
//
// Each experiment prints a plain-text table with a note recalling the
// paper's qualitative result for comparison; EXPERIMENTS.md records a
// measured-vs-paper discussion.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fasciabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// The recorded batched-DP acceptance benchmark has its own flag set
	// and noise methodology; dispatch before the experiment flags.
	if len(args) > 0 && args[0] == "bench-batch-record" {
		return runBatchRecord(args[1:])
	}
	if len(args) > 0 && args[0] == "bench-mem-record" {
		return runMemRecord(args[1:])
	}
	fs := flag.NewFlagSet("fasciabench", flag.ContinueOnError)
	var (
		full    = fs.Bool("full", false, "paper-scale workloads (hours of compute, tens of GB for k=12 runs)")
		scale   = fs.Float64("scale", 0, "override network scale factor")
		smallSc = fs.Float64("small-scale", 0, "override scale for million-vertex networks")
		seed    = fs.Int64("seed", 0, "override random seed")
		iters   = fs.Int("iterations", 0, "override iteration count for error/profile experiments")
		maxK    = fs.Int("maxk", 0, "override the largest template size")
		batch   = fs.String("batch", "", "override the batch widths swept by ablation-batch (comma-separated, e.g. 1,4,16)")
		list    = fs.Bool("list", false, "list experiments and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fasciabench [flags] <experiment>... | all")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range experiments.Order {
			fmt.Println(name)
		}
		return nil
	}
	names := fs.Args()
	if len(names) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment named")
	}
	if len(names) == 1 && names[0] == "all" {
		names = experiments.Order
	}

	p := experiments.Quick()
	if *full {
		p = experiments.Full()
	}
	if *scale > 0 {
		p.Scale = *scale
	}
	if *smallSc > 0 {
		p.SmallScale = *smallSc
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *iters > 0 {
		p.Iters = *iters
	}
	if *maxK > 0 {
		p.MaxK = *maxK
	}
	if *batch != "" {
		var widths []int
		for _, f := range strings.Split(*batch, ",") {
			b, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || b < 1 {
				return fmt.Errorf("bad -batch %q (want comma-separated positive integers)", *batch)
			}
			widths = append(widths, b)
		}
		p.Batches = widths
	}

	// Ctrl-C aborts the current experiment promptly (cancellation is
	// polled inside every counting run) instead of killing mid-print.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	for _, name := range names {
		start := time.Now()
		tab, err := experiments.RunContext(ctx, name, p)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
