package main

import (
	"os"
	"testing"
)

func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	os.Stdout = os.NewFile(null.Fd(), "null")
	t.Cleanup(func() {
		os.Stdout = old
		null.Close()
	})
}

func TestRunList(t *testing.T) {
	silence(t)
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	silence(t)
	args := []string{
		"-scale", "0.08", "-small-scale", "0.0008", "-iterations", "3",
		"-maxk", "5", "-seed", "2", "table1",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	silence(t)
	if err := run(nil); err == nil {
		t.Error("no experiment accepted")
	}
	if err := run([]string{"fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
