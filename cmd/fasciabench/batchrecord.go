// bench-batch-record: the recorded acceptance benchmark behind
// BENCH_batch.json, run as a subcommand so the noise methodology is
// code, not shell history. It sweeps the lane width on the 100k-vertex
// acceptance graphs, takes N >= 5 timed samples per configuration after
// a discarded warmup, drops outliers by median-absolute-deviation, and
// APPENDS the result to the JSON trajectory — earlier entries are
// preserved so the file records the optimization history rather than
// only its latest point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/dp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

// sampleStats is one configuration's measurement: all raw samples (ms
// per iteration), the subset that survived outlier dropping, and the
// median of the survivors.
type sampleStats struct {
	Samples  []float64 `json:"samples_ms_per_iter"`
	Kept     []float64 `json:"kept_ms_per_iter"`
	MedianMS float64   `json:"median_ms_per_iter"`
	PeakMB   float64   `json:"peak_mb"`
}

// trajectoryEntry is one recorded point of the batched-DP optimization
// trajectory.
type trajectoryEntry struct {
	Date    string                             `json:"date"`
	Label   string                             `json:"label"`
	Command string                             `json:"command"`
	Host    map[string]string                  `json:"host"`
	Setup   map[string]any                     `json:"setup"`
	Results map[string]map[string]*sampleStats `json:"results"`
	Speedup map[string]map[string]float64      `json:"speedup_vs_B1"`
	Tiling  map[string]any                     `json:"tiling"`
	// Acceptance evaluates the recorded criteria (>= 1.5x at B=8, peak
	// table bytes <= B x unbatched) against this entry's own medians, so
	// the file can never claim a target its numbers don't show.
	Acceptance map[string]any `json:"acceptance,omitempty"`
	Notes      string         `json:"notes,omitempty"`
}

func runBatchRecord(args []string) error {
	fs := flag.NewFlagSet("bench-batch-record", flag.ContinueOnError)
	var (
		samples = fs.Int("samples", 5, "timed samples per configuration (min 5; one extra warmup sample is run and discarded)")
		iters   = fs.Int("iterations", 8, "color-coding iterations per sample")
		batches = fs.String("batches", "1,8", "comma-separated lane widths to sweep")
		graphsF = fs.String("graphs", "er100k,ba100k", "comma-separated acceptance graphs (er100k, ba100k)")
		templ   = fs.String("template", "U7-1", "template name")
		label   = fs.String("label", "", "trajectory label (default: tiled kernels @ <date>)")
		out     = fs.String("out", "BENCH_batch.json", "trajectory file to append to")
		notes   = fs.String("notes", "", "free-form analysis recorded with the entry")
		dryRun  = fs.Bool("n", false, "print the entry instead of writing the file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *samples < 5 {
		return fmt.Errorf("bench-batch-record: -samples %d below the noise-methodology floor of 5", *samples)
	}
	widths, err := parseWidths(*batches)
	if err != nil {
		return err
	}
	tpl, err := tmpl.Named(*templ)
	if err != nil {
		return err
	}

	entry := &trajectoryEntry{
		Date:    time.Now().Format("2006-01-02"),
		Label:   *label,
		Command: fmt.Sprintf("fasciabench bench-batch-record -samples %d -iterations %d -batches %s -graphs %s -template %s", *samples, *iters, *batches, *graphsF, *templ),
		Host: map[string]string{
			"go":   runtime.Version(),
			"note": fmt.Sprintf("%d CPU(s); samples interleaved round-robin across configurations so host-throughput drift hits every lane width equally, one warmup round discarded, outliers beyond 3x the median absolute deviation dropped, medians of the survivors reported", runtime.NumCPU()),
		},
		Setup: map[string]any{
			"template":           *templ,
			"iterations_per_run": *iters,
			"mode":               "Inner",
			"workers":            1,
			"samples":            *samples,
		},
		Results: map[string]map[string]*sampleStats{},
		Speedup: map[string]map[string]float64{},
	}
	if entry.Label == "" {
		entry.Label = "tiled kernels @ " + entry.Date
	}

	// Build every (graph, width) engine up front so the timed rounds can
	// interleave: one sample of each configuration per round, rather than
	// all samples of one configuration in a block. Sequential blocks let
	// slow host drift masquerade as a between-width difference; paired
	// rounds cancel it in the B1 ratios.
	type recConfig struct {
		gname string
		b     int
		eng   *dp.Engine
		st    *sampleStats
	}
	var cfgs []*recConfig
	for _, gname := range strings.Split(*graphsF, ",") {
		gname = strings.TrimSpace(gname)
		g, err := acceptanceGraph(gname)
		if err != nil {
			return err
		}
		entry.Results[gname] = map[string]*sampleStats{}
		for _, B := range widths {
			cfg := dp.DefaultConfig()
			cfg.Batch = B
			cfg.Mode = dp.Inner
			cfg.Workers = 1
			e, err := dp.New(g, tpl, cfg)
			if err != nil {
				return err
			}
			rc := &recConfig{gname: gname, b: B, eng: e, st: &sampleStats{}}
			cfgs = append(cfgs, rc)
			entry.Results[gname][fmt.Sprintf("B%d", B)] = rc.st
		}
	}

	// Round 0 is an untimed warmup of every configuration, charging the
	// arena and page-fault costs before anything is recorded.
	for s := 0; s <= *samples; s++ {
		for _, rc := range cfgs {
			t0 := time.Now()
			res, err := rc.eng.Run(*iters)
			if err != nil {
				return err
			}
			ms := time.Since(t0).Seconds() * 1000 / float64(*iters)
			if s == 0 {
				if entry.Tiling == nil || res.Stats.TiledPasses > 0 {
					entry.Tiling = map[string]any{
						"llc_budget_bytes": res.Stats.LLCBudgetBytes,
						"tiled_passes":     res.Stats.TiledPasses,
						"tile_sweeps":      res.Stats.TileSweeps,
						"reorder_applied":  res.Stats.ReorderApplied,
					}
				}
				continue
			}
			rc.st.Samples = append(rc.st.Samples, math.Round(ms*10)/10)
			rc.st.PeakMB = math.Round(float64(res.PeakTableBytes)/(1<<20)*100) / 100
		}
	}

	for _, rc := range cfgs {
		rc.st.Kept, rc.st.MedianMS = dropOutliers(rc.st.Samples)
		fmt.Printf("%s/B%d: median %.1f ms/iter (kept %d/%d samples, peak %.2f MB)\n",
			rc.gname, rc.b, rc.st.MedianMS, len(rc.st.Kept), len(rc.st.Samples), rc.st.PeakMB)
	}
	for gname, res := range entry.Results {
		b1 := res["B1"]
		if b1 == nil || b1.MedianMS <= 0 {
			continue
		}
		sp := map[string]float64{}
		for key, st := range res {
			if key != "B1" && st.MedianMS > 0 {
				sp[key] = math.Round(b1.MedianMS/st.MedianMS*100) / 100
			}
		}
		entry.Speedup[gname] = sp
	}

	entry.Notes = *notes
	entry.Acceptance = evaluateAcceptance(entry)

	if *dryRun {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(entry)
	}
	return appendTrajectory(*out, entry,
		"optimization trajectory of the batched DP acceptance benchmark; entries are appended by `make bench-batch-record`, never overwritten")
}

// evaluateAcceptance derives the acceptance verdict from the entry's own
// medians: the best B8-vs-B1 speedup across graphs against the 1.5x
// target, and whether every B>1 peak stayed within B x the unbatched
// peak of the same graph.
func evaluateAcceptance(entry *trajectoryEntry) map[string]any {
	best := 0.0
	bestGraph := ""
	for gname, sp := range entry.Speedup {
		if s, ok := sp["B8"]; ok && s > best {
			best, bestGraph = s, gname
		}
	}
	peakOK := true
	for _, res := range entry.Results {
		b1 := res["B1"]
		if b1 == nil || b1.PeakMB <= 0 {
			continue
		}
		for key, st := range res {
			var b int
			if _, err := fmt.Sscanf(key, "B%d", &b); err != nil || b <= 1 {
				continue
			}
			if st.PeakMB > float64(b)*b1.PeakMB {
				peakOK = false
			}
		}
	}
	acc := map[string]any{
		"target_speedup_b8":       1.5,
		"best_speedup_b8":         best,
		"throughput_met":          best >= 1.5,
		"peak_within_b_x_unbatch": peakOK,
	}
	if bestGraph != "" {
		acc["best_speedup_graph"] = bestGraph
	}
	return acc
}

func parseWidths(s string) ([]int, error) {
	var widths []int
	for _, f := range strings.Split(s, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || b < 1 {
			return nil, fmt.Errorf("bad -batches %q (want comma-separated positive integers)", s)
		}
		widths = append(widths, b)
	}
	return widths, nil
}

// acceptanceGraph builds the fixed-seed graphs named by the acceptance
// criterion (>= 100k vertices, matching BenchmarkBatchedDP).
func acceptanceGraph(name string) (*graph.Graph, error) {
	switch name {
	case "er100k":
		return gen.ErdosRenyiM(100_000, 400_000, 1), nil
	case "ba100k":
		return gen.BarabasiAlbert(100_000, 4, 1), nil
	default:
		return nil, fmt.Errorf("unknown acceptance graph %q (want er100k or ba100k)", name)
	}
}

// dropOutliers removes samples farther than 3x the median absolute
// deviation from the sample median (a robust sigma-clip; with MAD == 0
// every sample is kept) and returns the survivors with their median. At
// least three samples always survive: if clipping would go below that,
// the three closest to the median are kept instead.
func dropOutliers(samples []float64) (kept []float64, median float64) {
	if len(samples) == 0 {
		return nil, 0
	}
	m := medianOf(samples)
	dev := make([]float64, len(samples))
	for i, s := range samples {
		dev[i] = math.Abs(s - m)
	}
	mad := medianOf(dev)
	for i, s := range samples {
		if mad == 0 || dev[i] <= 3*mad {
			kept = append(kept, s)
		}
	}
	if len(kept) < 3 {
		idx := make([]int, len(samples))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return dev[idx[a]] < dev[idx[b]] })
		kept = kept[:0]
		for _, i := range idx[:min(3, len(samples))] {
			kept = append(kept, samples[i])
		}
	}
	return kept, medianOf(kept)
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// appendTrajectory rewrites the trajectory file with the new entry
// appended. A legacy single-object file (the PR 3 recording) is wrapped
// as the trajectory's first entry, preserved verbatim. note is written
// only when the file does not already carry one.
func appendTrajectory(path string, entry any, note string) error {
	var doc struct {
		Note       string            `json:"note"`
		Trajectory []json.RawMessage `json:"trajectory"`
	}
	if raw, err := os.ReadFile(path); err == nil {
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(raw, &probe); err != nil {
			return fmt.Errorf("trajectory: %s exists but is not JSON: %w", path, err)
		}
		if tr, ok := probe["trajectory"]; ok {
			if err := json.Unmarshal(tr, &doc.Trajectory); err != nil {
				return fmt.Errorf("trajectory: bad trajectory in %s: %w", path, err)
			}
			if n, ok := probe["note"]; ok {
				_ = json.Unmarshal(n, &doc.Note)
			}
		} else {
			// Legacy single-entry file: keep it byte-for-byte as entry 0.
			doc.Trajectory = append(doc.Trajectory, json.RawMessage(raw))
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if doc.Note == "" {
		doc.Note = note
	}
	rawEntry, err := json.MarshalIndent(entry, "    ", "  ")
	if err != nil {
		return err
	}
	doc.Trajectory = append(doc.Trajectory, rawEntry)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
