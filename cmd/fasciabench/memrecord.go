// bench-mem-record: the recorded acceptance benchmark behind
// BENCH_mem.json, the out-of-core counterpart of bench-batch-record. It
// runs a large template on a large Barabási–Albert graph with dense
// tables under a -mem budget, takes N >= 5 timed samples after a
// discarded warmup, drops outliers by median-absolute-deviation, and
// APPENDS the result to the JSON trajectory. The headline figures are
// the whole-process peak RSS against the recorded ceiling (budget +
// graph CSR + runtime slack) and the spilled-vs-resident byte ratio; an
// optional unbudgeted baseline leg records what the same workload costs
// without the budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/dp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/table"
	"repro/internal/tmpl"
)

// memRunStats is one leg's measurement.
type memRunStats struct {
	Samples     []float64 `json:"samples_ms_per_iter"`
	Kept        []float64 `json:"kept_ms_per_iter"`
	MedianMS    float64   `json:"median_ms_per_iter"`
	PeakRSSMB   float64   `json:"peak_rss_mb"`
	PeakTableMB float64   `json:"peak_table_mb"`
	SpilledMB   float64   `json:"spilled_mb"`
	SpillSlabs  int64     `json:"spill_slabs"`
}

// memEntry is one recorded point of the out-of-core trajectory.
type memEntry struct {
	Date    string                  `json:"date"`
	Label   string                  `json:"label"`
	Command string                  `json:"command"`
	Host    map[string]string       `json:"host"`
	Setup   map[string]any          `json:"setup"`
	Results map[string]*memRunStats `json:"results"`
	// Acceptance evaluates the RSS criterion against this entry's own
	// numbers: the budgeted leg's peak RSS must stay under the recorded
	// ceiling, so the file can never claim a bound its numbers don't show.
	Acceptance map[string]any `json:"acceptance"`
	Notes      string         `json:"notes,omitempty"`
}

func runMemRecord(args []string) error {
	fs := flag.NewFlagSet("bench-mem-record", flag.ContinueOnError)
	var (
		samples  = fs.Int("samples", 5, "timed samples per leg (min 5; one extra warmup sample is run and discarded)")
		iters    = fs.Int("iterations", 1, "color-coding iterations per sample")
		graphF   = fs.String("graph", "ba1m", "acceptance graph (ba1m, ba10m)")
		templ    = fs.String("template", "U10-1", "template name")
		mem      = fs.Int64("mem", 512<<20, "peak table-memory budget in bytes for the budgeted leg")
		baseline = fs.Bool("baseline", true, "also record an unbudgeted baseline leg (runs after the budgeted leg; needs RAM for the full table footprint)")
		label    = fs.String("label", "", "trajectory label (default: out-of-core @ <date>)")
		out      = fs.String("out", "BENCH_mem.json", "trajectory file to append to")
		notes    = fs.String("notes", "", "free-form analysis recorded with the entry")
		dryRun   = fs.Bool("n", false, "print the entry instead of writing the file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *samples < 5 {
		return fmt.Errorf("bench-mem-record: -samples %d below the noise-methodology floor of 5", *samples)
	}
	if *mem <= 0 {
		return fmt.Errorf("bench-mem-record: -mem must be positive")
	}
	tpl, err := tmpl.Named(*templ)
	if err != nil {
		return err
	}
	g, err := memGraph(*graphF)
	if err != nil {
		return err
	}
	graphBytes := int64(g.N()+1)*8 + g.M()*2*4

	// The recorded RSS ceiling: the budget, plus the CSR the budget
	// deliberately does not cover, plus runtime/allocator slack.
	const runtimeSlack = 256 << 20
	ceiling := *mem + graphBytes + runtimeSlack

	entry := &memEntry{
		Date:    time.Now().Format("2006-01-02"),
		Label:   *label,
		Command: fmt.Sprintf("fasciabench bench-mem-record -samples %d -iterations %d -graph %s -template %s -mem %d", *samples, *iters, *graphF, *templ, *mem),
		Host: map[string]string{
			"go": runtime.Version(),
			"note": fmt.Sprintf("%d CPU(s), GOMEMLIMIT=%q; one warmup round discarded, outliers beyond 3x the median absolute deviation dropped, medians of the survivors reported; peak RSS is the process high-water sampled at iteration boundaries, so the budgeted leg runs first",
				runtime.NumCPU(), os.Getenv("GOMEMLIMIT")),
		},
		Setup: map[string]any{
			"graph":              *graphF,
			"graph_csr_bytes":    graphBytes,
			"template":           *templ,
			"iterations_per_run": *iters,
			"layout":             "naive (dense; the whole-table slabs the spill region targets)",
			"mode":               "Inner",
			"workers":            1,
			"batch":              "auto",
			"samples":            *samples,
			"mem_budget_bytes":   *mem,
		},
		Results: map[string]*memRunStats{},
	}
	if entry.Label == "" {
		entry.Label = "out-of-core @ " + entry.Date
	}

	legs := []struct {
		name string
		mem  int64
	}{{"budgeted", *mem}}
	if *baseline {
		legs = append(legs, struct {
			name string
			mem  int64
		}{"unbudgeted", -1})
	}

	for _, leg := range legs {
		cfg := dp.DefaultConfig()
		cfg.TableKind = table.Naive
		cfg.Batch = dp.BatchAuto
		cfg.Mode = dp.Inner
		cfg.Workers = 1
		cfg.Seed = 3
		cfg.MemBudgetBytes = leg.mem
		e, err := dp.New(g, tpl, cfg)
		if err != nil {
			return err
		}
		st := &memRunStats{}
		entry.Results[leg.name] = st
		for s := 0; s <= *samples; s++ {
			t0 := time.Now()
			res, err := e.Run(*iters)
			if err != nil {
				return err
			}
			ms := time.Since(t0).Seconds() * 1000 / float64(*iters)
			if s == 0 {
				continue // warmup
			}
			st.Samples = append(st.Samples, math.Round(ms*10)/10)
			st.PeakRSSMB = math.Max(st.PeakRSSMB, math.Round(float64(res.Stats.PeakRSSBytes)/(1<<20)*100)/100)
			st.PeakTableMB = math.Round(float64(res.PeakTableBytes)/(1<<20)*100) / 100
			st.SpilledMB = math.Round(float64(res.Stats.SpillMappedBytes)/(1<<20)*100) / 100
			st.SpillSlabs = res.Stats.SpillSlabs
		}
		st.Kept, st.MedianMS = dropOutliers(st.Samples)
		fmt.Printf("%s: median %.1f ms/iter (kept %d/%d samples), peak RSS %.1f MB, peak table %.1f MB, spilled %.1f MB in %d slabs\n",
			leg.name, st.MedianMS, len(st.Kept), len(st.Samples), st.PeakRSSMB, st.PeakTableMB, st.SpilledMB, st.SpillSlabs)
	}

	bud := entry.Results["budgeted"]
	entry.Acceptance = map[string]any{
		"rss_ceiling_mb": math.Round(float64(ceiling)/(1<<20)*100) / 100,
		"peak_rss_mb":    bud.PeakRSSMB,
		"rss_bounded":    bud.PeakRSSMB <= float64(ceiling)/(1<<20),
		"spilled":        bud.SpillSlabs > 0,
	}
	if base := entry.Results["unbudgeted"]; base != nil && bud.PeakRSSMB > 0 {
		entry.Acceptance["unbudgeted_peak_table_mb"] = base.PeakTableMB
		entry.Acceptance["table_bytes_over_budgeted_rss"] = math.Round(base.PeakTableMB/bud.PeakRSSMB*100) / 100
	}
	adaptive, err := memAdaptiveCheck()
	if err != nil {
		return err
	}
	entry.Acceptance["adaptive"] = adaptive
	entry.Notes = *notes

	if *dryRun {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(entry)
	}
	return appendTrajectory(*out, entry,
		"out-of-core acceptance trajectory (dense tables under -mem spill budgets); entries are appended by `make bench-mem-record`, never overwritten")
}

// memAdaptiveCheck records the adaptive-sampling half of the acceptance
// criterion next to the out-of-core half: a fixed small config (a U7
// path on a 50k-vertex BA graph, the same workload as `make
// bench-adaptive`) run variance-targeted to a 1% relative-stderr goal
// under a far-higher iteration cap. The recorded numbers must show the
// rule stopping strictly before the cap with the target met, so the
// entry can never claim a saving its own run didn't achieve.
func memAdaptiveCheck() (map[string]any, error) {
	const (
		target   = 0.01
		capIters = 100
	)
	g := gen.BarabasiAlbert(50_000, 5, 1)
	tpl, err := tmpl.Named("U7-1")
	if err != nil {
		return nil, err
	}
	cfg := dp.DefaultConfig()
	cfg.Workers = 1
	cfg.Seed = 3
	e, err := dp.New(g, tpl, cfg)
	if err != nil {
		return nil, err
	}
	res, err := e.RunConverged(target, 2, capIters)
	if err != nil {
		return nil, err
	}
	n := len(res.PerIteration)
	rel := math.Inf(1)
	if res.Estimate != 0 {
		rel = res.StdErr / math.Abs(res.Estimate)
	}
	return map[string]any{
		"workload":        "ba50k U7-1 seed 3",
		"target_rel_err":  target,
		"iteration_cap":   capIters,
		"stop_iterations": n,
		"rel_err_at_stop": math.Round(rel*1e4) / 1e4,
		"converged_early": n < capIters && rel <= target,
		"iter_savings_x":  math.Round(float64(capIters)/float64(n)*100) / 100,
	}, nil
}

// memGraph builds the fixed-seed graphs named by the out-of-core
// acceptance criterion.
func memGraph(name string) (*graph.Graph, error) {
	switch name {
	case "ba1m":
		return gen.BarabasiAlbert(1_000_000, 5, 1), nil
	case "ba10m":
		return gen.BarabasiAlbert(10_000_000, 5, 1), nil
	default:
		return nil, fmt.Errorf("unknown acceptance graph %q (want ba1m or ba10m)", name)
	}
}
