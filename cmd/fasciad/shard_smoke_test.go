package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"syscall"
	"testing"
	"time"

	fascia "repro"
	"repro/internal/serve"
)

// TestHelperProcess is not a test: it is the subprocess body for the
// multi-process shard smoke. The smoke re-execs the test binary with
// FASCIAD_HELPER=1 and the real fasciad args after "--", so each
// coordinator and worker is a genuine separate OS process with its own
// signal handling — in a normal test run this returns immediately.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("FASCIAD_HELPER") != "1" {
		return
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	os.Exit(run(args, os.Stdout, os.Stderr, nil))
}

// syncBuffer is a mutex-guarded buffer for subprocess output (the
// scanner goroutine writes while test assertions read).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// daemon is one fasciad subprocess (coordinator or shard worker).
type daemon struct {
	cmd    *exec.Cmd
	addr   string
	stdout *syncBuffer
	stderr *syncBuffer
	exited chan error
}

var servingRE = regexp.MustCompile(`serving on (\S+)`)

// spawnDaemon re-execs the test binary as a fasciad process with args
// and waits for its "serving on <addr>" line.
func spawnDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-test.run=TestHelperProcess", "--"}, args...)...)
	cmd.Env = append(os.Environ(), "FASCIAD_HELPER=1")
	d := &daemon{cmd: cmd, stdout: &syncBuffer{}, stderr: &syncBuffer{}, exited: make(chan error, 1)}
	cmd.Stderr = d.stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-d.exited
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			d.stdout.Write([]byte(line + "\n"))
			if m := servingRE.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
		d.exited <- cmd.Wait()
	}()
	select {
	case d.addr = <-addrCh:
	case <-time.After(20 * time.Second):
		t.Fatalf("daemon %v never became ready\nstdout: %s\nstderr: %s", args, d.stdout, d.stderr)
	}
	return d
}

// wait blocks until the daemon exits and returns its exit code.
func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	select {
	case err := <-d.exited:
		d.exited <- err // keep the channel refillable for Cleanup
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("daemon wait: %v", err)
		return -1
	case <-time.After(20 * time.Second):
		t.Fatalf("daemon did not exit\nstdout: %s\nstderr: %s", d.stdout, d.stderr)
		return -1
	}
}

// TestShardSmoke is the multi-process acceptance test behind
// `make shard-smoke`: a coordinator and three shard-worker processes
// over real TCP, a query fanned across the fleet, one worker SIGKILLed
// mid-run (exercising re-dispatch to the survivors), the result checked
// bit-identical to the single-process engine, and SIGTERM drains on
// both tiers.
func TestShardSmoke(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := fascia.ErdosRenyi(150, 600, 4)
	if err := fascia.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}

	coord := spawnDaemon(t, "-addr", "127.0.0.1:0", "-graph", "web="+path, "-workers", "2")
	base := "http://" + coord.addr
	client := &http.Client{Timeout: 120 * time.Second}

	var workers []*daemon
	for i := 0; i < 3; i++ {
		workers = append(workers, spawnDaemon(t,
			"-shard-of", base,
			"-shard-listen", "127.0.0.1:0",
			"-shard-iter-delay", "25ms",
			"-graph", "web="+path,
		))
	}

	stats := func() serve.Stats {
		t.Helper()
		resp, err := client.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st serve.Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	deadline := time.Now().Add(15 * time.Second)
	for stats().Shards < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never registered: %+v", stats())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The single-process reference for the bit-identity check.
	const iters, seed = 30, 7
	tr, err := fascia.ParseTemplate("t", "0-1 1-2 1-3")
	if err != nil {
		t.Fatal(err)
	}
	want, err := fascia.Count(g, tr, fascia.DefaultOptions().WithSeed(seed).WithIterations(iters))
	if err != nil {
		t.Fatal(err)
	}

	// Fire the query, then SIGKILL one worker mid-run: with 25 ms per
	// iteration the run takes >= 750 ms, so a kill at ~300 ms lands in
	// the middle of the exchange and forces a re-dispatch.
	type countResult struct {
		code int
		body map[string]any
		err  error
	}
	resCh := make(chan countResult, 1)
	go func() {
		body, _ := json.Marshal(map[string]any{
			"graph": "web", "template": "0-1 1-2 1-3",
			"iterations": iters, "seed": seed,
			"per_iteration": true, "timeout_ms": 110000,
		})
		resp, err := client.Post(base+"/v1/count", "application/json", bytes.NewReader(body))
		if err != nil {
			resCh <- countResult{err: err}
			return
		}
		defer resp.Body.Close()
		var out map[string]any
		err = json.NewDecoder(resp.Body).Decode(&out)
		resCh <- countResult{code: resp.StatusCode, body: out, err: err}
	}()
	time.Sleep(300 * time.Millisecond)
	if err := workers[1].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	var res countResult
	select {
	case res = <-resCh:
	case <-time.After(60 * time.Second):
		t.Fatalf("query never returned\ncoordinator stderr: %s", coord.stderr)
	}
	if res.err != nil || res.code != http.StatusOK {
		t.Fatalf("count = %d, %v (%v)\ncoordinator stderr: %s", res.code, res.body, res.err, coord.stderr)
	}
	if partial, _ := res.body["partial"].(bool); partial {
		t.Fatalf("query went partial despite survivors: %v", res.body)
	}
	if got := res.body["shard_iterations"].(float64); got != iters {
		t.Fatalf("shard_iterations = %v, want %d (shard tier should have served the whole query)", got, iters)
	}
	if got := res.body["shard_redispatches"].(float64); got < 1 {
		t.Fatalf("shard_redispatches = %v, want >= 1 (the kill should have forced one)\ncoordinator stderr: %s", got, coord.stderr)
	}
	perIter := res.body["per_iteration"].([]any)
	if len(perIter) != iters {
		t.Fatalf("per_iteration length %d, want %d", len(perIter), iters)
	}
	for i, v := range perIter {
		if v.(float64) != want.PerIteration[i] {
			t.Fatalf("iteration %d: sharded %v != single-process %v", i, v, want.PerIteration[i])
		}
	}
	if st := stats(); st.ShardFailures < 1 || st.ShardRedispatches < 1 {
		t.Fatalf("coordinator stats after kill: %+v", st)
	}

	// SIGTERM drains a surviving worker: it deregisters first, finishes
	// cleanly, and the pool shrinks (the SIGKILLed worker stays listed —
	// only per-query exclusion or an explicit deregister removes it).
	if err := workers[0].cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := workers[0].wait(t); code != 0 {
		t.Fatalf("worker SIGTERM exit = %d\nstderr: %s", code, workers[0].stderr)
	}
	if out := workers[0].stdout.String(); !bytes.Contains([]byte(out), []byte("drained")) {
		t.Fatalf("worker drain summary missing: %s", out)
	}
	if st := stats(); st.Shards != 2 {
		t.Fatalf("Shards after worker drain = %d, want 2", st.Shards)
	}

	// The coordinator cached the sharded stream: the repeat is a hit.
	body, _ := json.Marshal(map[string]any{
		"graph": "web", "template": "0-1 1-2 1-3", "iterations": iters, "seed": seed,
	})
	resp, err := client.Post(base+"/v1/count", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var hit map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hit); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hit["cache"] != "hit" || hit["count"].(float64) != want.Count {
		t.Fatalf("repeat query = %v, want cache hit with count %v", hit, want.Count)
	}

	// SIGTERM the coordinator and the last worker; both exit 0.
	if err := coord.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := coord.wait(t); code != 0 {
		t.Fatalf("coordinator SIGTERM exit = %d\nstderr: %s", code, coord.stderr)
	}
	if err := workers[2].cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := workers[2].wait(t); code != 0 {
		t.Fatalf("last worker SIGTERM exit = %d\nstderr: %s", code, workers[2].stderr)
	}
}
