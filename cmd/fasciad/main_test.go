package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"

	fascia "repro"
	"repro/internal/serve"
)

// TestServeSmoke is the end-to-end acceptance test for fasciad (the
// `make serve-smoke` target): boot the daemon in-process on an
// ephemeral port with a preloaded graph, serve a count, verify a
// repeated query is answered from cache (hit counter asserted), verify
// an overlapping query runs only the residual iterations, then send a
// real SIGTERM and check the drain exits cleanly with no leaked
// goroutines.
func TestServeSmoke(t *testing.T) {
	before := runtime.NumGoroutine()

	// Write a graph file for the -graph preload path.
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := fascia.SaveGraph(path, fascia.ErdosRenyi(150, 600, 4)); err != nil {
		t.Fatal(err)
	}

	ready := make(chan string, 1)
	exit := make(chan int, 1)
	var stdout, stderr bytes.Buffer
	go func() {
		exit <- run([]string{
			"-addr", "127.0.0.1:0",
			"-graph", "web=" + path,
			"-workers", "2",
			"-concurrency", "2",
			"-drain-timeout", "5s",
		}, &stdout, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case code := <-exit:
		t.Fatalf("fasciad exited early with %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("fasciad never became ready")
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	query := func(req map[string]any) map[string]any {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := client.Post(base+"/v1/count", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("count status %d: %v", resp.StatusCode, out)
		}
		return out
	}
	req := map[string]any{"graph": "web", "template": "0-1 1-2 1-3", "iterations": 8, "seed": 7}

	// 1. A fresh query is served end to end.
	first := query(req)
	if first["cache"] != "miss" || first["iterations"].(float64) != 8 {
		t.Fatalf("first query: %v", first)
	}
	count := first["count"].(float64)
	if count <= 0 {
		t.Fatalf("estimate %v, want > 0", count)
	}

	// 2. The repeated query is answered from cache, bit-identically.
	second := query(req)
	if second["cache"] != "hit" || second["count"].(float64) != count {
		t.Fatalf("repeat not served from cache: %v", second)
	}

	// 3. An overlapping query runs only the residual iterations.
	over := map[string]any{"graph": "web", "template": "0-1 1-2 1-3", "iterations": 20, "seed": 7}
	third := query(over)
	if third["cache"] != "partial" || third["cached_iterations"].(float64) != 8 || third["iterations"].(float64) != 20 {
		t.Fatalf("overlap query: %v", third)
	}

	// Hit counters, asserted via the stats endpoint.
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Cache.Hits < 1 || st.Cache.PartialHits < 1 || st.Cache.Misses < 1 {
		t.Fatalf("cache counters: %+v", st.Cache)
	}
	// The expvar endpoint must expose the serve namespace too.
	resp, err = client.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars bytes.Buffer
	if _, err := vars.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read /debug/vars body: %v", err)
	}
	resp.Body.Close()
	if !bytes.Contains(vars.Bytes(), []byte("fascia.serve.cache_hits")) {
		t.Fatal("/debug/vars missing fascia.serve.* gauges")
	}

	// 4. SIGTERM drains cleanly: the process-level handler stops
	// admission, flushes in-flight queries, and run() returns 0.
	client.CloseIdleConnections()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("fasciad did not drain after SIGTERM\nstdout: %s", stdout.String())
	}
	if !bytes.Contains(stdout.Bytes(), []byte("drained")) {
		t.Fatalf("drain summary missing from stdout: %s", stdout.String())
	}

	// 5. No goroutine leaks after the full boot/serve/drain cycle.
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, after, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
