// Command fasciad is the long-lived counting service: it loads graphs
// once into a shared registry and serves approximate subgraph-count
// queries over HTTP/JSON with a bounded work queue, admission control
// (429 + Retry-After), per-query deadlines, a seed-keyed result cache
// that lets repeated and overlapping queries reuse completed iterations,
// and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	fasciad -addr :8080 -graph web=web.txt -graph road=road.bin \
//	        -workers 8 -concurrency 2 -queue 16 -cache-bytes 67108864
//
// Endpoints:
//
//	GET  /healthz            liveness (503 while draining)
//	GET  /v1/graphs          registered graphs
//	POST /v1/graphs?name=X   upload an edge list
//	POST /v1/count           run / reuse a counting query (JSON body)
//	GET  /v1/stats           scheduler + cache + shard counters (JSON)
//	GET  /v1/shards          registered shard workers
//	POST /v1/shards          register a shard worker (JSON body)
//	DELETE /v1/shards?addr=X deregister a shard worker
//	GET  /debug/vars         expvar gauges
//	GET  /debug/pprof/       profiles
//
// With -shard-of, fasciad instead runs as a shard worker: it loads its
// -graph set, serves the shard wire protocol on -shard-listen, registers
// itself with the coordinator named by -shard-of, and participates in
// horizontally-sharded counting runs (each worker owns a contiguous
// vertex block and exchanges passive DP rows with its peers over TCP).
// A coordinator whose pool covers a queried graph dispatches the
// iterations across the registered workers and splices the result
// bit-identically into the cache/merge pipeline; on SIGTERM a worker
// deregisters first and then drains its in-flight exchanges.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	fascia "repro"
	"repro/internal/serve"
)

// graphFlags collects repeated -graph name=path pairs.
type graphFlags []string

func (g *graphFlags) String() string { return strings.Join(*g, ",") }
func (g *graphFlags) Set(s string) error {
	*g = append(*g, s)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main with its environment injected so the smoke test can boot
// the daemon in-process: args are the CLI args, ready (when non-nil)
// receives the bound listen address once the server is accepting, and
// the exit code is returned instead of os.Exit'ed. Shutdown is by
// SIGTERM/SIGINT: stop admitting, cancel in-flight queries (each
// flushes its partial mean to its client), then exit.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("fasciad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port; port 0 for ephemeral)")
		workers      = fs.Int("workers", 0, "global worker budget across concurrent queries (0 = GOMAXPROCS)")
		concurrency  = fs.Int("concurrency", 0, "queries running at once (0 = 2)")
		queue        = fs.Int("queue", 16, "bounded wait-queue depth behind the run slots")
		cacheBytes   = fs.Int64("cache-bytes", serve.DefaultCacheBytes, "seed-keyed result cache budget in bytes")
		memBytes     = fs.Int64("mem", 0, "per-query peak table-memory budget in bytes: large slabs spill to file-backed mappings, and .bin graph preloads are memory-mapped (0 = FASCIA_MEM_BYTES env or unlimited)")
		defIters     = fs.Int("iterations", 32, "default iterations for queries that omit them")
		maxIters     = fs.Int("max-iterations", 100000, "per-query iteration cap")
		defTimeout   = fs.Duration("timeout", 30*time.Second, "default per-query deadline")
		maxTimeout   = fs.Duration("max-timeout", 5*time.Minute, "per-query deadline cap")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "grace period for in-flight queries on shutdown")

		shardOf        = fs.String("shard-of", "", "run as a shard worker of the coordinator at this base URL (e.g. http://host:8080)")
		shardListen    = fs.String("shard-listen", "127.0.0.1:0", "shard-protocol listen address in -shard-of mode")
		shardAdvertise = fs.String("shard-advertise", "", "address registered with the coordinator (default: the bound -shard-listen address)")
		shardIterDelay = fs.Duration("shard-iter-delay", 0, "artificial per-iteration delay in -shard-of mode (testing aid)")

		graphs graphFlags
	)
	fs.Var(&graphs, "graph", "preload a graph as name=path (repeatable; .bin for binary CSR)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *shardOf != "" {
		return runShardWorker(shardWorkerConfig{
			coordinator:  strings.TrimRight(*shardOf, "/"),
			listen:       *shardListen,
			advertise:    *shardAdvertise,
			iterDelay:    *shardIterDelay,
			drainTimeout: *drainTimeout,
		}, graphs, stdout, stderr, ready)
	}

	srv := serve.New(serve.Config{
		WorkerBudget:      *workers,
		MaxConcurrent:     *concurrency,
		QueueDepth:        *queue,
		CacheBytes:        *cacheBytes,
		MemBudgetBytes:    *memBytes,
		DefaultIterations: *defIters,
		MaxIterations:     *maxIters,
		DefaultTimeout:    *defTimeout,
		MaxTimeout:        *maxTimeout,
	})
	for _, spec := range graphs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fmt.Fprintf(stderr, "fasciad: bad -graph %q (want name=path)\n", spec)
			return 2
		}
		// Under a memory budget, map binary CSR preloads in place instead
		// of reading them onto the heap (trusted operator-supplied files).
		load := fascia.LoadGraph
		if strings.HasSuffix(path, ".bin") && (*memBytes > 0 || os.Getenv("FASCIA_MEM_BYTES") != "") {
			load = fascia.MapGraph
		}
		g, err := load(path)
		if err != nil {
			fmt.Fprintf(stderr, "fasciad: load %s: %v\n", path, err)
			return 1
		}
		info, err := srv.Registry().Add(name, g)
		if err != nil {
			fmt.Fprintf(stderr, "fasciad: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "fasciad: loaded graph %q (n=%d m=%d hash=%x)\n", info.Name, info.N, info.M, info.Hash)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "fasciad: listen: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "fasciad: serving on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "fasciad: serve: %v\n", err)
		return 1
	case <-sigCtx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	fmt.Fprintln(stdout, "fasciad: draining (new queries get 503, in-flight queries flush partial means)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(stderr, "fasciad: %v\n", err)
		code = 1
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(stderr, "fasciad: http shutdown: %v\n", err)
		code = 1
	}
	<-errc // Serve has returned (http.ErrServerClosed)
	st := srv.Stats()
	fmt.Fprintf(stdout, "fasciad: drained: %d queries served (%d cache hits, %d partial hits), %d rejected, %d partial results\n",
		st.Queries, st.Cache.Hits, st.Cache.PartialHits, st.Rejected, st.PartialResults)
	return code
}
