package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os/signal"
	"strings"
	"syscall"
	"time"

	fascia "repro"
	"repro/internal/serve"
	"repro/internal/shard"
)

// shardWorkerConfig is the -shard-of mode configuration carved out of
// the shared flag set.
type shardWorkerConfig struct {
	// coordinator is the coordinator's HTTP base URL (no trailing slash).
	coordinator string
	// listen is the shard-protocol listen address; advertise is the
	// address registered with the coordinator ("" = the bound address).
	listen    string
	advertise string
	// iterDelay artificially slows each DP iteration (testing aid for
	// exercising mid-run shard loss).
	iterDelay    time.Duration
	drainTimeout time.Duration
}

// runShardWorker boots fasciad as a shard worker: load the graphs, serve
// the shard wire protocol, announce the graph set to the coordinator,
// and on SIGTERM deregister first (so no new run is dispatched here),
// then drain in-flight exchanges before exiting.
func runShardWorker(cfg shardWorkerConfig, graphs graphFlags, stdout, stderr io.Writer, ready chan<- string) int {
	if len(graphs) == 0 {
		fmt.Fprintln(stderr, "fasciad: -shard-of mode needs at least one -graph")
		return 2
	}
	w := shard.NewWorker(shard.WorkerOptions{
		Logf:      func(format string, args ...any) { fmt.Fprintf(stderr, "fasciad: "+format+"\n", args...) },
		IterDelay: cfg.iterDelay,
	})
	var hashes []string
	for _, spec := range graphs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fmt.Fprintf(stderr, "fasciad: bad -graph %q (want name=path)\n", spec)
			return 2
		}
		g, err := fascia.LoadGraph(path)
		if err != nil {
			fmt.Fprintf(stderr, "fasciad: load %s: %v\n", path, err)
			return 1
		}
		h := w.AddGraph(g)
		hashes = append(hashes, serve.GraphHashHex(h))
		fmt.Fprintf(stdout, "fasciad: shard worker loaded graph %q (n=%d hash=%x)\n", name, g.N(), h)
	}

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		fmt.Fprintf(stderr, "fasciad: shard listen: %v\n", err)
		return 1
	}
	go w.Serve(ln)
	addr := ln.Addr().String()
	advertise := cfg.advertise
	if advertise == "" {
		advertise = addr
	}

	client := &http.Client{Timeout: 5 * time.Second}
	if err := registerShard(client, cfg.coordinator, advertise, hashes); err != nil {
		fmt.Fprintf(stderr, "fasciad: register with %s: %v\n", cfg.coordinator, err)
		w.Close()
		return 1
	}
	fmt.Fprintf(stdout, "fasciad: shard worker serving on %s (registered with %s as %s)\n", addr, cfg.coordinator, advertise)
	if ready != nil {
		ready <- addr
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-sigCtx.Done()
	stop() // restore default signal handling: a second signal kills hard

	// Deregister before draining so the coordinator stops dispatching new
	// runs here while the in-flight ones finish; best-effort, because the
	// coordinator may itself already be gone.
	fmt.Fprintln(stdout, "fasciad: shard worker draining (deregistering, finishing in-flight exchanges)")
	if err := deregisterShard(client, cfg.coordinator, advertise); err != nil {
		fmt.Fprintf(stderr, "fasciad: deregister: %v\n", err)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	code := 0
	if err := w.Drain(drainCtx); err != nil {
		fmt.Fprintf(stderr, "fasciad: %v\n", err)
		code = 1
	}
	w.Close()
	fmt.Fprintln(stdout, "fasciad: shard worker drained")
	return code
}

// registerShard announces the worker to the coordinator, retrying while
// the coordinator is still coming up (workers and coordinator typically
// boot together). A 4xx is a configuration error and fails immediately.
func registerShard(client *http.Client, coordinator, advertise string, hashes []string) error {
	body, err := json.Marshal(serve.ShardRegistration{Addr: advertise, Graphs: hashes})
	if err != nil {
		return err
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Post(coordinator+"/v1/shards", "application/json", bytes.NewReader(body))
		if err == nil {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				return nil
			case resp.StatusCode >= 400 && resp.StatusCode < 500:
				return fmt.Errorf("coordinator rejected registration: %d %s", resp.StatusCode, strings.TrimSpace(string(msg)))
			default:
				err = fmt.Errorf("coordinator returned %d", resp.StatusCode)
			}
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// deregisterShard removes the worker from the coordinator's pool.
func deregisterShard(client *http.Client, coordinator, advertise string) error {
	req, err := http.NewRequest(http.MethodDelete,
		coordinator+"/v1/shards?addr="+url.QueryEscape(advertise), nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("coordinator returned %d", resp.StatusCode)
	}
	return nil
}
