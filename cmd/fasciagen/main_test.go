package main

import (
	"os"
	"path/filepath"
	"testing"

	fascia "repro"
)

func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	os.Stdout = os.NewFile(null.Fd(), "null")
	t.Cleanup(func() {
		os.Stdout = old
		null.Close()
	})
}

func TestRunTable1(t *testing.T) {
	silence(t)
	if err := run([]string{"-table1", "-scale", "0.05", "-small-scale", "0.0005"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleNetwork(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "c.txt")
	if err := run([]string{"-network", "circuit", "-out", out, "-labels", "4"}); err != nil {
		t.Fatal(err)
	}
	g, err := fascia.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 252 || g.Labels == nil {
		t.Fatalf("written graph wrong: n=%d labels=%v", g.N(), g.Labels != nil)
	}
}

func TestRunAll(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	if err := run([]string{"-all", "-dir", dir, "-scale", "0.05", "-small-scale", "0.0005"}); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.txt"))
	if len(files) != 10 {
		t.Fatalf("wrote %d networks, want 10", len(files))
	}
}

func TestRunErrors(t *testing.T) {
	silence(t)
	if err := run(nil); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"-network", "bogus"}); err == nil {
		t.Error("bad network accepted")
	}
}
