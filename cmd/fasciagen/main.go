// Command fasciagen generates the synthetic benchmark networks standing
// in for the paper's datasets (see DESIGN.md §3) and prints the Table I
// analogue.
//
// Usage:
//
//	fasciagen -table1 [-scale 0.1]           # print network statistics
//	fasciagen -network enron -out enron.txt  # write one network to disk
//	fasciagen -all -dir data/ -scale 0.05    # write every preset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	fascia "repro"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fasciagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fasciagen", flag.ContinueOnError)
	var (
		table1  = fs.Bool("table1", false, "print the Table I analogue for all presets")
		network = fs.String("network", "", "generate a single named preset")
		all     = fs.Bool("all", false, "generate every preset")
		out     = fs.String("out", "", "output file for -network (suffix .bin for binary)")
		dir     = fs.String("dir", ".", "output directory for -all")
		scale   = fs.Float64("scale", 1.0, "scale factor (1.0 = paper-sized)")
		smallSc = fs.Float64("small-scale", 0, "override scale for million-vertex networks (0 = same as -scale)")
		seed    = fs.Int64("seed", 1, "generator seed")
		labels  = fs.Int("labels", 0, "attach this many random vertex labels")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *smallSc == 0 {
		*smallSc = *scale
	}

	switch {
	case *table1:
		p := experiments.Quick()
		p.Scale, p.SmallScale, p.Seed = *scale, *smallSc, *seed
		p.Table1().Fprint(os.Stdout)
		return nil
	case *network != "":
		pre, err := fascia.Network(*network)
		if err != nil {
			return err
		}
		g := pre.Build(*scale, *seed)
		if *labels > 0 {
			fascia.AssignRandomLabels(g, *labels, *seed+1)
		}
		path := *out
		if path == "" {
			path = pre.Name + ".txt"
		}
		if err := fascia.SaveGraph(path, g); err != nil {
			return err
		}
		fmt.Printf("%s: %s -> %s\n", pre.Name, g.ComputeStats(), path)
		return nil
	case *all:
		for _, pre := range fascia.Networks() {
			sc := *scale
			if pre.Paper.N > 500_000 {
				sc = *smallSc
			}
			g := pre.Build(sc, *seed)
			if *labels > 0 {
				fascia.AssignRandomLabels(g, *labels, *seed+1)
			}
			path := filepath.Join(*dir, pre.Name+".txt")
			if err := fascia.SaveGraph(path, g); err != nil {
				return err
			}
			fmt.Printf("%s: %s -> %s\n", pre.Name, g.ComputeStats(), path)
		}
		return nil
	default:
		return fmt.Errorf("one of -table1, -network, or -all is required")
	}
}
