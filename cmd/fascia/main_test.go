package main

import (
	"os"
	"path/filepath"
	"testing"

	fascia "repro"
)

func TestParseTemplate(t *testing.T) {
	cases := []struct {
		spec string
		k    int
		ok   bool
	}{
		{"U7-2", 7, true},
		{"path:5", 5, true},
		{"star:4", 4, true},
		{"0-1 1-2 1-3", 4, true},
		{"triangle", 3, true},
		{"c4", 4, true},
		{"C4", 4, true},
		{"cycle:6", 6, true},
		{"k4", 4, true},
		{"clique:4", 4, true},
		{"paw", 4, true},
		{"tailed-triangle", 4, true},
		{"diamond", 4, true},
		{"0-1 1-2 2-0", 3, true}, // cyclic edge list
		{"path:x", 0, false},
		{"star:1", 0, false},
		{"U99-1", 0, false},
		{"cycle:2", 0, false},
		{"0-1 5-6", 0, false}, // disconnected
	}
	for _, c := range cases {
		tpl, err := parseTemplate(c.spec)
		if (err == nil) != c.ok {
			t.Errorf("parseTemplate(%q): err=%v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if err == nil && tpl.K() != c.k {
			t.Errorf("parseTemplate(%q): k=%d, want %d", c.spec, tpl.K(), c.k)
		}
	}
}

func TestLoadGraphModes(t *testing.T) {
	if _, err := loadGraph("", "", 1, 1, 0); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadGraph("x.txt", "enron", 1, 1, 0); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := loadGraph("", "bogus", 1, 1, 0); err == nil {
		t.Error("bad network accepted")
	}
	g, err := loadGraph("", "circuit", 1.0, 1, 0)
	if err != nil || g.N() != 252 {
		t.Fatalf("circuit load: %v, n=%d", err, g.N())
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := fascia.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := loadGraph(path, "", 1, 1, 0)
	if err != nil || g2.N() != g.N() {
		t.Fatalf("file load: %v", err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Full CLI flow on a tiny instance, output to stdout.
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	defer null.Close()
	os.Stdout = os.NewFile(null.Fd(), "null")
	defer func() { os.Stdout = old }()

	args := []string{
		"-network", "circuit", "-scale", "0.5", "-template", "U3-1",
		"-iterations", "3", "-exact", "-sample", "2", "-seed", "5",
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-list-networks"}); err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, bad := range [][]string{
		{"-network", "circuit", "-parallel", "bogus"},
		{"-network", "circuit", "-table", "bogus"},
		{"-network", "circuit", "-partition", "bogus"},
		{"-template", "U3-1"}, // no graph
	} {
		if err := run(bad); err == nil {
			t.Errorf("args %v accepted", bad)
		}
	}
	// Epsilon/delta path and alternative enum values.
	if err := run([]string{
		"-network", "circuit", "-scale", "0.3", "-template", "path:3",
		"-epsilon", "2", "-delta", "0.4", "-parallel", "outer",
		"-table", "hash", "-partition", "balanced", "-labels", "3",
	}); err != nil {
		t.Fatalf("accuracy path: %v", err)
	}
}

func TestRunConvergeAndInduced(t *testing.T) {
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	defer null.Close()
	os.Stdout = os.NewFile(null.Fd(), "null")
	defer func() { os.Stdout = old }()

	if err := run([]string{
		"-network", "circuit", "-scale", "0.4", "-template", "U3-1",
		"-converge", "0.05", "-exact", "-induced", "-seed", "2",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMotifsMode(t *testing.T) {
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	defer null.Close()
	os.Stdout = os.NewFile(null.Fd(), "null")
	defer func() { os.Stdout = old }()

	if err := run([]string{
		"-network", "circuit", "-scale", "0.4", "-motifs", "4", "-iterations", "20", "-seed", "3",
	}); err != nil {
		t.Fatal(err)
	}
}
