package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

// TestMetricsSmoke starts the metrics endpoint on an ephemeral port, runs
// a counting workload through the CLI entry point, and asserts that
// /debug/vars serves the fascia.* gauges and /debug/pprof/ responds —
// the `make metrics-smoke` CI check.
func TestMetricsSmoke(t *testing.T) {
	addr, shutdown, err := startMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	// Drive the gauges the way a run does.
	onIteration(0, 42.0, 5*time.Millisecond)
	if err := run([]string{"-network", "circuit", "-scale", "0.5", "-template", "U5-1", "-iterations", "2", "-seed", "7", "-progress"}); err != nil {
		t.Fatalf("counting run: %v", err)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	for _, key := range []string{
		"fascia.runs", "fascia.iterations", "fascia.last_estimate",
		"fascia.kernel_direct", "fascia.kernel_aggregate",
		"fascia.peak_table_bytes", "fascia.rows_allocated",
		"fascia.rows_released", "fascia.cancelled_runs",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
	var runs int64
	if err := json.Unmarshal(vars["fascia.runs"], &runs); err != nil || runs < 1 {
		t.Errorf("fascia.runs = %s, want >= 1", vars["fascia.runs"])
	}
	var iters int64
	if err := json.Unmarshal(vars["fascia.iterations"], &iters); err != nil || iters < 2 {
		t.Errorf("fascia.iterations = %s, want >= 2", vars["fascia.iterations"])
	}

	presp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", presp.StatusCode)
	}
}
