// Command fascia counts approximate non-induced occurrences of a tree
// template in a graph using the color-coding technique.
//
// Usage:
//
//	fascia -graph g.txt -template U7-1 [-iterations 100] [flags]
//	fascia -network enron -scale 0.1 -template "0-1 1-2 1-3" -iterations 50
//
// The graph comes either from a file (-graph, text edge list or .bin CSR)
// or from a named synthetic preset (-network, see -list-networks). The
// template is a paper name (U3-1 ... U12-2), a path size (path:K), a star
// (star:K), or an explicit edge list ("0-1 1-2 ...").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	fascia "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fascia:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fascia", flag.ContinueOnError)
	var (
		graphPath  = fs.String("graph", "", "graph file (text edge list, or .bin CSR)")
		network    = fs.String("network", "", "generate a named synthetic network instead of loading a file")
		scale      = fs.Float64("scale", 1.0, "scale factor for -network (1.0 = paper-sized)")
		templSpec  = fs.String("template", "U5-1", "template: paper name, path:K, star:K, or edge list like \"0-1 1-2\"")
		iterations = fs.Int("iterations", 1, "number of color-coding iterations")
		epsilon    = fs.Float64("epsilon", 0, "error bound (with -delta, overrides -iterations)")
		delta      = fs.Float64("delta", 0, "confidence parameter (with -epsilon)")
		colors     = fs.Int("colors", 0, "number of colors (0 = template size)")
		threads    = fs.Int("threads", 0, "worker goroutines (0 = GOMAXPROCS)")
		mode       = fs.String("parallel", "auto", "parallelization: auto, inner, outer, hybrid")
		layout     = fs.String("table", "lazy", "table layout: lazy, naive, hash, succinct")
		kernel     = fs.String("kernel", "auto", "DP combination kernel: auto, direct, aggregate")
		batch      = fs.String("batch", "1", "iteration batch width: lanes per DP traversal (an integer, or \"auto\")")
		llc        = fs.Int64("llc", 0, "cache budget in bytes for DP column tiling (0 = FASCIA_LLC_BYTES env or 64 MiB, negative = disable tiling)")
		mem        = fs.Int64("mem", 0, "peak table-memory budget in bytes: large slabs spill to file-backed mappings (0 = FASCIA_MEM_BYTES env or unlimited, negative = never spill)")
		adaptive   = fs.Float64("adaptive", 0, "variance-targeted stopping: run until the relative stderr drops below this, -iterations capping the run (0 = fixed iterations)")
		partition  = fs.String("partition", "one", "partitioning: one (one-at-a-time), balanced")
		share      = fs.Bool("share", false, "share isomorphic subtemplates (memory for time)")
		seed       = fs.Int64("seed", 0, "random seed")
		labels     = fs.Int("labels", 0, "assign this many random vertex labels to the graph")
		sample     = fs.Int("sample", 0, "also sample this many embeddings (enumeration mode)")
		exact      = fs.Bool("exact", false, "also compute the exact count by exhaustive search (slow)")
		induced    = fs.Bool("induced", false, "with -exact, also report the exact induced count")
		converge   = fs.Float64("converge", 0, "run until the relative stderr drops below this (overrides -iterations)")
		motifs     = fs.Int("motifs", 0, "instead of one template, profile all trees of this size (3-12)")
		list       = fs.Bool("list-networks", false, "list network presets and exit")
		metricsA   = fs.String("metrics-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address")
		timeout    = fs.Duration("timeout", 0, "bound the counting run; on expiry the partial estimate is reported")
		progress   = fs.Bool("progress", false, "print each iteration's estimate as it completes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, p := range fascia.Networks() {
			fmt.Printf("%-12s %-55s paper: n=%d m=%d\n", p.Name, p.Model, p.Paper.N, p.Paper.M)
		}
		return nil
	}

	// Ctrl-C (or -timeout) aborts the run promptly and reports the
	// partial estimate over completed iterations.
	ctx, cancelCtx := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelCtx()

	if *metricsA != "" {
		addr, shutdown, err := startMetrics(*metricsA)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/debug/vars (pprof at /debug/pprof/)\n", addr)
	}

	g, err := loadGraph(*graphPath, *network, *scale, *seed, *mem)
	if err != nil {
		return err
	}
	if *labels > 0 {
		fascia.AssignRandomLabels(g, *labels, *seed+1)
	}
	t, err := parseTemplate(*templSpec)
	if err != nil {
		return err
	}

	opt := fascia.DefaultOptions().WithSeed(*seed).WithThreads(*threads)
	opt.Colors = *colors
	opt.ShareSubtemplates = *share
	if *timeout > 0 {
		opt = opt.WithTimeout(*timeout)
	}
	if *metricsA != "" || *progress {
		verbose := *progress
		opt = opt.WithOnIteration(func(i int, est float64, elapsed time.Duration) {
			onIteration(i, est, elapsed)
			if verbose {
				fmt.Fprintf(os.Stderr, "iteration %d: estimate %.6g (%v elapsed)\n", i+1, est, elapsed.Round(time.Millisecond))
			}
		})
	}
	if *epsilon > 0 && *delta > 0 {
		opt = opt.WithAccuracy(*epsilon, *delta)
		fmt.Printf("iterations from (eps=%g, delta=%g): %d\n", *epsilon, *delta, fascia.IterationsFor(*epsilon, *delta, t.K()))
	} else {
		opt = opt.WithIterations(*iterations)
	}
	switch *mode {
	case "auto":
		opt = opt.WithParallel(fascia.ParallelAuto)
	case "inner":
		opt = opt.WithParallel(fascia.ParallelInner)
	case "outer":
		opt = opt.WithParallel(fascia.ParallelOuter)
	case "hybrid":
		opt = opt.WithParallel(fascia.ParallelHybrid)
	default:
		return fmt.Errorf("unknown -parallel %q", *mode)
	}
	switch *layout {
	case "lazy":
		opt = opt.WithTable(fascia.TableLazy)
	case "naive":
		opt = opt.WithTable(fascia.TableNaive)
	case "hash":
		opt = opt.WithTable(fascia.TableHash)
	case "succinct":
		opt = opt.WithTable(fascia.TableSuccinct)
	default:
		return fmt.Errorf("unknown -table %q", *layout)
	}
	switch *kernel {
	case "auto":
		opt = opt.WithKernel(fascia.KernelAuto)
	case "direct":
		opt = opt.WithKernel(fascia.KernelDirect)
	case "aggregate":
		opt = opt.WithKernel(fascia.KernelAggregate)
	default:
		return fmt.Errorf("unknown -kernel %q", *kernel)
	}
	switch *partition {
	case "one":
		opt = opt.WithPartition(fascia.PartitionOneAtATime)
	case "balanced":
		opt = opt.WithPartition(fascia.PartitionBalanced)
	default:
		return fmt.Errorf("unknown -partition %q", *partition)
	}
	if *batch == "auto" {
		opt = opt.WithBatch(fascia.BatchAuto)
	} else if b, err := strconv.Atoi(*batch); err == nil && b >= 1 {
		opt = opt.WithBatch(b)
	} else {
		return fmt.Errorf("bad -batch %q (want a positive integer or \"auto\")", *batch)
	}
	opt = opt.WithLLCBytes(*llc).WithMemBudgetBytes(*mem)
	if *adaptive > 0 {
		opt = opt.WithAdaptive(*adaptive)
	}

	s := g.ComputeStats()
	if *motifs > 0 {
		prof, err := fascia.FindMotifsContext(ctx, "cli", g, *motifs, max(*iterations, 1), opt)
		if err != nil {
			return err
		}
		rel := prof.RelativeFrequencies()
		fmt.Printf("graph: %s\nmotif profile, all %d trees of size %d, %d iterations:\n",
			s, len(prof.Trees), *motifs, prof.Iterations)
		for i, tr := range prof.Trees {
			fmt.Printf("  %2d %-30s count %.6g  rel %.4f\n", i+1, tr.String(), prof.Counts[i], rel[i])
		}
		return nil
	}
	fmt.Printf("graph: %s\ntemplate: %s (k=%d, aut=%d)\n", s, t.Name(), t.K(), t.Automorphisms())
	var res fascia.Result
	if *converge > 0 {
		res, err = fascia.CountConvergedContext(ctx, g, t, *converge, 1_000_000, opt)
	} else {
		res, err = fascia.CountContext(ctx, g, t, opt)
	}
	publishStats(res)
	if err != nil {
		if res.Iterations == 0 {
			return err
		}
		// Cancelled or timed out mid-run: report the partial estimate.
		fmt.Fprintf(os.Stderr, "run interrupted (%v); reporting partial result over %d iterations\n", err, res.Iterations)
	}
	fmt.Printf("estimate: %.6g occurrences (±%.3g stderr, %d iterations, %v, %s mode, peak tables %.2f MB)\n",
		res.Count, res.StdErr, res.Iterations, res.Elapsed.Round(0), res.Parallel, float64(res.PeakTableBytes)/(1<<20))
	if res.Stats.MemBudgetBytes > 0 {
		fmt.Printf("memory: budget %.0f MB, spilled %.2f MB in %d slabs, peak RSS %.1f MB\n",
			float64(res.Stats.MemBudgetBytes)/(1<<20), float64(res.Stats.SpillMappedBytes)/(1<<20),
			res.Stats.SpillSlabs, float64(res.Stats.PeakRSSBytes)/(1<<20))
	}
	if err != nil {
		return nil // partial result already reported; exit cleanly
	}

	if *exact {
		ex := fascia.ExactCount(g, t)
		rel := 0.0
		if ex > 0 {
			rel = (res.Count - float64(ex)) / float64(ex)
		}
		fmt.Printf("exact: %d occurrences (relative error %+.4f)\n", ex, rel)
		if *induced {
			fmt.Printf("exact induced: %d occurrences\n", fascia.ExactCountInduced(g, t))
		}
	}
	if *sample > 0 {
		embs, err := fascia.SampleEmbeddingsContext(ctx, g, t, opt, *sample)
		if err != nil {
			return err
		}
		for i, emb := range embs {
			fmt.Printf("embedding %d: %v\n", i+1, emb.Mapping)
		}
	}
	return nil
}

func loadGraph(path, network string, scale float64, seed int64, mem int64) (*fascia.Graph, error) {
	switch {
	case path != "" && network != "":
		return nil, fmt.Errorf("use either -graph or -network, not both")
	case path != "":
		// Under a memory budget (explicit -mem or the env knob), map
		// binary CSRs in place instead of reading them onto the heap.
		if strings.HasSuffix(path, ".bin") && (mem > 0 || (mem == 0 && os.Getenv("FASCIA_MEM_BYTES") != "")) {
			return fascia.MapGraph(path)
		}
		return fascia.LoadGraph(path)
	case network != "":
		p, err := fascia.Network(network)
		if err != nil {
			return nil, err
		}
		return p.Build(scale, seed), nil
	default:
		return nil, fmt.Errorf("one of -graph or -network is required")
	}
}

func parseTemplate(spec string) (*fascia.Template, error) {
	// Zoo motif names first ("triangle", "c4", "paw", ...) — before the
	// edge-list case, which would otherwise swallow "tailed-triangle".
	if t, err := fascia.MotifZooTemplate(strings.ToLower(spec)); err == nil {
		return t, nil
	}
	switch {
	case strings.HasPrefix(spec, "path:"):
		k, err := strconv.Atoi(strings.TrimPrefix(spec, "path:"))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad path template %q", spec)
		}
		return fascia.PathTemplate(k), nil
	case strings.HasPrefix(spec, "star:"):
		k, err := strconv.Atoi(strings.TrimPrefix(spec, "star:"))
		if err != nil || k < 2 {
			return nil, fmt.Errorf("bad star template %q", spec)
		}
		return fascia.StarTemplate(k), nil
	case strings.HasPrefix(spec, "cycle:"), strings.HasPrefix(spec, "clique:"), isCompactGraphSpec(spec):
		// "cycle:6", "clique:4", "c5", "k4" — keep the built-in names.
		return fascia.ParseGraphTemplate("", spec)
	case strings.Contains(spec, "-") && !strings.HasPrefix(spec, "U"):
		// General edge lists — cyclic specs like "0-1 1-2 2-0" route to
		// the tree-decomposition engine; tree specs stay tree templates.
		return fascia.ParseGraphTemplate("custom", spec)
	default:
		return fascia.TemplateByName(spec)
	}
}

// isCompactGraphSpec reports whether spec is bare cycle/clique notation:
// "c" or "k" followed by digits only.
func isCompactGraphSpec(spec string) bool {
	if len(spec) < 2 || (spec[0] != 'c' && spec[0] != 'k') {
		return false
	}
	_, err := strconv.Atoi(spec[1:])
	return err == nil
}
