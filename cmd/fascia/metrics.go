// Metrics endpoint for cmd/fascia: -metrics-addr starts a private HTTP
// mux exposing expvar counters under /debug/vars and the standard pprof
// profiles under /debug/pprof/, so long counting runs can be observed
// (estimate so far, iterations done, kernel decisions, table footprint)
// and profiled without instrumenting the library.
package main

import (
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	fascia "repro"
)

// Counting-run gauges, published under the fascia.* expvar namespace.
// They are package-level so both the OnIteration hook and the final
// result publisher update the same variables.
var (
	mRuns            = expvar.NewInt("fascia.runs")
	mIterations      = expvar.NewInt("fascia.iterations")
	mLastEstimate    = expvar.NewFloat("fascia.last_estimate")
	mLastIterMillis  = expvar.NewFloat("fascia.last_iteration_elapsed_ms")
	mKernelDirect    = expvar.NewInt("fascia.kernel_direct")
	mKernelAggregate = expvar.NewInt("fascia.kernel_aggregate")
	mPeakTableBytes  = expvar.NewInt("fascia.peak_table_bytes")
	mRowsAllocated   = expvar.NewInt("fascia.rows_allocated")
	mRowsReleased    = expvar.NewInt("fascia.rows_released")
	mCancelled       = expvar.NewInt("fascia.cancelled_runs")
	mBatchSize       = expvar.NewInt("fascia.batch_size")
	mBatchesRun      = expvar.NewInt("fascia.batches_run")
	mArenaHits       = expvar.NewInt("fascia.arena_hits")
	mArenaMisses     = expvar.NewInt("fascia.arena_misses")
	mTiledPasses     = expvar.NewInt("fascia.tiled_passes")
	mTileSweeps      = expvar.NewInt("fascia.tile_sweeps")
	mLLCBudgetBytes  = expvar.NewInt("fascia.llc_budget_bytes")
	mReorderApplied  = expvar.NewInt("fascia.reorder_applied")
)

// onIteration is the Options.OnIteration hook: it streams per-iteration
// progress into the expvar gauges while a run is in flight.
func onIteration(i int, estimate float64, elapsed time.Duration) {
	mIterations.Add(1)
	mLastEstimate.Set(estimate)
	mLastIterMillis.Set(float64(elapsed.Microseconds()) / 1000)
}

// publishStats folds a finished run's RunStats into the gauges.
func publishStats(res fascia.Result) {
	mRuns.Add(1)
	mLastEstimate.Set(res.Count)
	mKernelDirect.Add(res.Stats.KernelDirect)
	mKernelAggregate.Add(res.Stats.KernelAggregate)
	if res.PeakTableBytes > mPeakTableBytes.Value() {
		mPeakTableBytes.Set(res.PeakTableBytes)
	}
	mRowsAllocated.Add(res.Stats.RowsAllocated)
	mRowsReleased.Add(res.Stats.RowsReleased)
	mBatchSize.Set(int64(res.Stats.BatchSize))
	mBatchesRun.Add(res.Stats.BatchesRun)
	mArenaHits.Add(res.Stats.ArenaHits)
	mArenaMisses.Add(res.Stats.ArenaMisses)
	mTiledPasses.Add(res.Stats.TiledPasses)
	mTileSweeps.Add(res.Stats.TileSweeps)
	mLLCBudgetBytes.Set(res.Stats.LLCBudgetBytes)
	if res.Stats.ReorderApplied {
		mReorderApplied.Add(1)
	}
	if res.Stats.Cancelled {
		mCancelled.Add(1)
	}
}

// startMetrics serves /debug/vars and /debug/pprof/ on addr using a
// private mux (the default mux would leak handlers into library users).
// It returns the bound address — addr may use port 0 for an ephemeral
// port, which the smoke test relies on — and a shutdown func.
func startMetrics(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() {
		// Serve always returns on shutdown; only unexpected errors (a
		// dying listener, not the Close we trigger ourselves) are worth
		// reporting.
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintf(os.Stderr, "fascia: metrics server: %v\n", err)
		}
	}()
	return ln.Addr().String(), func() { srv.Close() }, nil
}
