package fascia

import (
	"fmt"
	"time"

	"repro/internal/dp"
	"repro/internal/part"
	"repro/internal/table"
)

// TableLayout selects the dynamic-table storage layout (§III-C).
type TableLayout int

const (
	// TableLazy is the paper's improved layout: per-vertex rows allocated
	// on demand. The default.
	TableLazy TableLayout = iota
	// TableNaive preallocates all rows (the paper's baseline).
	TableNaive
	// TableHash stores only nonzero cells in a hash table keyed by
	// vid·Nc + colorIndex (best for high-selectivity templates).
	TableHash
	// TableSuccinct stores compressed rows (zero-run skipping plus varint
	// packing of integer counts, with a lossless raw-IEEE fallback), the
	// Motivo-style layout for memory-bound graphs. Estimates are
	// bit-identical to the other layouts.
	TableSuccinct
)

func (l TableLayout) String() string {
	switch l {
	case TableLazy:
		return "lazy"
	case TableNaive:
		return "naive"
	case TableHash:
		return "hash"
	case TableSuccinct:
		return "succinct"
	default:
		return fmt.Sprintf("TableLayout(%d)", int(l))
	}
}

func (l TableLayout) kind() (table.Kind, error) {
	switch l {
	case TableLazy:
		return table.Lazy, nil
	case TableNaive:
		return table.Naive, nil
	case TableHash:
		return table.Hash, nil
	case TableSuccinct:
		return table.Succinct, nil
	default:
		return 0, fmt.Errorf("fascia: unknown table layout %d", int(l))
	}
}

// PartitionStrategy selects the template partitioning heuristic (§III-D).
type PartitionStrategy int

const (
	// PartitionOneAtATime peels single vertices whenever possible (the
	// paper's preferred strategy). The default.
	PartitionOneAtATime PartitionStrategy = iota
	// PartitionBalanced cuts subtemplates as evenly as possible.
	PartitionBalanced
)

func (s PartitionStrategy) String() string {
	switch s {
	case PartitionOneAtATime:
		return "one-at-a-time"
	case PartitionBalanced:
		return "balanced"
	default:
		return fmt.Sprintf("PartitionStrategy(%d)", int(s))
	}
}

func (s PartitionStrategy) strategy() (part.Strategy, error) {
	switch s {
	case PartitionOneAtATime:
		return part.OneAtATime, nil
	case PartitionBalanced:
		return part.Balanced, nil
	default:
		return 0, fmt.Errorf("fascia: unknown partition strategy %d", int(s))
	}
}

// KernelChoice selects the internal-node DP combination kernel. The
// direct kernel re-runs the (Ca, Cp) split contraction for every
// neighbor; the aggregated kernel first sums neighbor passive rows into a
// dense scratch buffer (an SpMM-style neighbor aggregation) and contracts
// once per vertex, which wins on high-degree vertices. Results are
// identical in every mode; only speed differs.
type KernelChoice int

const (
	// KernelAuto picks direct or aggregated per vertex with a
	// degree/width cost model. The default.
	KernelAuto KernelChoice = iota
	// KernelDirect always contracts per neighbor.
	KernelDirect
	// KernelAggregate always aggregates neighbor rows first.
	KernelAggregate
)

func (c KernelChoice) String() string {
	switch c {
	case KernelAuto:
		return "auto"
	case KernelDirect:
		return "direct"
	case KernelAggregate:
		return "aggregate"
	default:
		return fmt.Sprintf("KernelChoice(%d)", int(c))
	}
}

func (c KernelChoice) kernel() (dp.KernelMode, error) {
	switch c {
	case KernelAuto:
		return dp.KernelAuto, nil
	case KernelDirect:
		return dp.KernelDirect, nil
	case KernelAggregate:
		return dp.KernelAggregate, nil
	default:
		return 0, fmt.Errorf("fascia: unknown kernel choice %d", int(c))
	}
}

// ParallelMode selects between the paper's two multithreading schemes
// (§III-E).
type ParallelMode int

const (
	// ParallelAuto picks inner-loop parallelism for large graphs and
	// outer-loop for small ones. The default.
	ParallelAuto ParallelMode = iota
	// ParallelInner shards the per-vertex loop of each DP pass.
	ParallelInner
	// ParallelOuter runs whole iterations concurrently.
	ParallelOuter
	// ParallelHybrid nests inner-loop workers inside concurrent
	// iterations (the paper's stated future work, implemented here).
	ParallelHybrid
)

func (m ParallelMode) String() string {
	switch m {
	case ParallelAuto:
		return "auto"
	case ParallelInner:
		return "inner"
	case ParallelOuter:
		return "outer"
	case ParallelHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("ParallelMode(%d)", int(m))
	}
}

func (m ParallelMode) mode() (dp.Mode, error) {
	switch m {
	case ParallelAuto:
		return dp.Auto, nil
	case ParallelInner:
		return dp.Inner, nil
	case ParallelOuter:
		return dp.Outer, nil
	case ParallelHybrid:
		return dp.Hybrid, nil
	default:
		return 0, fmt.Errorf("fascia: unknown parallel mode %d", int(m))
	}
}

// Options configures a counting run. The zero value is usable and equals
// DefaultOptions() except for RootVertex, which DefaultOptions sets to -1
// (automatic); prefer DefaultOptions().With... chains.
type Options struct {
	// Iterations is the number of color-coding iterations (Algorithm 1).
	// When 0, the count is derived from Epsilon/Delta if set, else 1.
	Iterations int
	// Epsilon and Delta request the theoretical iteration count
	// guaranteeing relative error Epsilon with confidence 1-2·Delta.
	// Only consulted when Iterations == 0.
	Epsilon, Delta float64
	// Colors is the number of colors (0 = template size, the default).
	Colors int
	// Threads bounds worker goroutines (0 = GOMAXPROCS).
	Threads int
	// Parallel selects the multithreading scheme.
	Parallel ParallelMode
	// Table selects the dynamic-table layout.
	Table TableLayout
	// Partition selects the template partitioning heuristic.
	Partition PartitionStrategy
	// ShareSubtemplates merges isomorphic rooted subtemplates, trading
	// time for memory (§III-C/D).
	ShareSubtemplates bool
	// Seed makes runs reproducible; iteration i colors with Seed+i.
	Seed int64
	// RootVertex (>= 0) forces the template root; negative = automatic.
	// The root determines which orbit per-vertex counts measure.
	RootVertex int
	// DisableLeafSpecial turns off the single-vertex-child fast paths
	// (for ablations; results are unchanged).
	DisableLeafSpecial bool
	// Kernel selects the internal-node DP kernel (auto, direct, or
	// aggregate); see KernelChoice. Results are unchanged, only speed.
	Kernel KernelChoice
	// KeepTables retains the final iteration's tables for
	// SampleEmbeddings.
	KeepTables bool
	// Batch selects the iteration-batched execution mode: B > 1 runs B
	// independent colorings ("lanes") through one DP traversal per
	// batch, amortizing the graph walk and split enumeration across
	// lanes. 0 or 1 keeps the classic one-traversal-per-iteration
	// schedule; BatchAuto picks a width from the template size and a
	// memory budget. Results are bit-identical to unbatched runs (lane
	// seeds match iteration seeds); only speed and peak memory (×B per
	// concurrent traversal) change.
	Batch int
	// LLCBytes is the cache budget (in bytes) the engine's column-tiling
	// heuristics target: DP passes whose passive-table working set
	// exceeds it are swept tile-by-tile so gathered rows stay
	// cache-resident. 0 consults the FASCIA_LLC_BYTES environment
	// variable and falls back to 64 MiB; negative disables tiling.
	// Execution-only: estimates are bit-identical at any setting.
	LLCBytes int64
	// MemBudgetBytes bounds the engine's peak table memory: large table
	// slabs spill to unlinked file-backed mappings the OS can page out,
	// and the automatic batch sizer caps its lane budget, so peak RSS
	// stays bounded independent of graph size. 0 consults the
	// FASCIA_MEM_BYTES environment variable (unset = unlimited); negative
	// disables spilling. Execution-only: estimates are bit-identical at
	// any setting.
	MemBudgetBytes int64
	// Adaptive, when positive, replaces the fixed Iterations schedule
	// with a variance-targeted stopping rule: iterations run (in seed
	// order, so the estimate stream is a prefix of a fixed run's) until
	// the relative standard error of the running mean drops below
	// Adaptive. Iterations then acts as the iteration cap (0 = 1e6).
	Adaptive float64
	// Timeout, when positive, bounds every run of an Engine built from
	// these options (each Run/Count call gets a fresh timeout). On expiry
	// the run returns its partial result alongside the context error,
	// exactly as caller-driven cancellation does.
	Timeout time.Duration
	// OnIteration, when non-nil, is invoked after each completed
	// iteration with the iteration's index, its individual estimate, and
	// the elapsed wall time since the run started. Calls are serialized,
	// but under outer/hybrid parallelism iterations complete out of
	// order, so i is not monotone. The hook runs on the engine's
	// goroutines: keep it fast.
	OnIteration func(i int, estimate float64, elapsed time.Duration)
}

// DefaultOptions returns the paper-faithful defaults.
func DefaultOptions() Options {
	return Options{RootVertex: -1}
}

// WithIterations returns a copy of o running exactly n iterations.
func (o Options) WithIterations(n int) Options {
	o.Iterations = n
	return o
}

// WithAccuracy returns a copy of o deriving the iteration count from the
// (eps, delta) guarantee. Beware: the theoretical bound is enormous for
// large templates; the paper's experiments show a handful of iterations
// suffice in practice.
func (o Options) WithAccuracy(eps, delta float64) Options {
	o.Iterations = 0
	o.Epsilon, o.Delta = eps, delta
	return o
}

// WithSeed returns a copy of o with the given random seed.
func (o Options) WithSeed(seed int64) Options {
	o.Seed = seed
	return o
}

// WithThreads returns a copy of o bounded to n worker goroutines.
func (o Options) WithThreads(n int) Options {
	o.Threads = n
	return o
}

// WithTable returns a copy of o using the given table layout.
func (o Options) WithTable(l TableLayout) Options {
	o.Table = l
	return o
}

// WithPartition returns a copy of o using the given partition strategy.
func (o Options) WithPartition(s PartitionStrategy) Options {
	o.Partition = s
	return o
}

// WithParallel returns a copy of o using the given parallel mode.
func (o Options) WithParallel(m ParallelMode) Options {
	o.Parallel = m
	return o
}

// WithKernel returns a copy of o using the given DP kernel choice.
func (o Options) WithKernel(c KernelChoice) Options {
	o.Kernel = c
	return o
}

// BatchAuto asks the engine to choose the iteration-batch width from
// the template size and a memory budget (see Options.Batch).
const BatchAuto = dp.BatchAuto

// WithBatch returns a copy of o using the given iteration-batch width
// (BatchAuto to let the engine choose).
func (o Options) WithBatch(b int) Options {
	o.Batch = b
	return o
}

// WithLLCBytes returns a copy of o with the given tiling cache budget
// (see Options.LLCBytes).
func (o Options) WithLLCBytes(b int64) Options {
	o.LLCBytes = b
	return o
}

// WithMemBudgetBytes returns a copy of o with the given peak-memory
// budget (see Options.MemBudgetBytes).
func (o Options) WithMemBudgetBytes(b int64) Options {
	o.MemBudgetBytes = b
	return o
}

// WithAdaptive returns a copy of o running iterations adaptively until
// the relative standard error drops below relStdErr (see
// Options.Adaptive).
func (o Options) WithAdaptive(relStdErr float64) Options {
	o.Adaptive = relStdErr
	return o
}

// WithTimeout returns a copy of o bounding every run to d.
func (o Options) WithTimeout(d time.Duration) Options {
	o.Timeout = d
	return o
}

// WithOnIteration returns a copy of o calling fn after each completed
// iteration; see Options.OnIteration for the calling convention.
func (o Options) WithOnIteration(fn func(i int, estimate float64, elapsed time.Duration)) Options {
	o.OnIteration = fn
	return o
}

// Fingerprint returns a stable, human-readable key for the
// result-relevant options: two Options with equal fingerprints produce
// bit-identical per-iteration estimates for equal (graph, template,
// seed) inputs, so the fingerprint is safe to use as a result-cache key
// component (fasciad's seed-keyed cache keys on it).
//
// Only knobs that can change the floating-point estimate stream
// participate: Colors (changes the colorful probability and the
// coloring stream), Partition and ShareSubtemplates (change the
// partition tree and hence summation order), RootVertex (changes the
// DP root), and Adaptive (changes how many estimates the stream holds,
// so a cached adaptive entry records the iterations actually run
// rather than masquerading as a fixed-length stream). Execution knobs
// that are property-tested bit-identical — Table, Kernel, Batch,
// Parallel, Threads, DisableLeafSpecial, LLCBytes, MemBudgetBytes —
// and lifecycle knobs (Iterations, Seed, Timeout, KeepTables,
// OnIteration, Epsilon/Delta) are deliberately excluded so they do not
// fragment a cache. The leading version tag must be bumped if estimate
// semantics ever change.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("v1|c=%d|part=%s|share=%t|root=%d|adapt=%g",
		o.Colors, o.Partition, o.ShareSubtemplates, o.RootVertex, o.Adaptive)
}

// Every Options field must be classified into exactly one of the three
// lists below. The fasciavet fingerprintcover analyzer cross-checks the
// lists against the struct and the Fingerprint body at lint time, and
// TestFingerprintCoversAllOptions re-checks them at test time (and
// proves each result-relevant field actually perturbs the fingerprint),
// so an Options field can never be added without deciding — explicitly
// — whether it fragments fasciad's result cache.
var (
	// fingerprintResultFields can change the floating-point estimate
	// stream and therefore participate in Fingerprint().
	fingerprintResultFields = []string{
		"Colors", "Partition", "ShareSubtemplates", "RootVertex", "Adaptive",
	}
	// fingerprintExecutionOnly are knobs proven bit-identical across all
	// settings by the kernel-equivalence and oracle-differential property
	// tests; excluding them keeps equivalent queries on one cache entry.
	fingerprintExecutionOnly = []string{
		"Table", "Kernel", "Batch", "Parallel", "Threads", "DisableLeafSpecial", "LLCBytes", "MemBudgetBytes",
	}
	// fingerprintLifecycle shape how many iterations run, which seed
	// starts the stream, or what happens around the run — the cache keys
	// seed and iteration count separately, so they stay out of the
	// fingerprint.
	fingerprintLifecycle = []string{
		"Iterations", "Epsilon", "Delta", "Seed", "Timeout", "KeepTables", "OnIteration",
	}
)

// iterations resolves the iteration count.
func (o Options) iterations(templateK int) int {
	if o.Iterations > 0 {
		return o.Iterations
	}
	if o.Epsilon > 0 && o.Delta > 0 {
		return dp.IterationsFor(o.Epsilon, o.Delta, templateK)
	}
	return 1
}

// config lowers Options to the internal engine configuration.
func (o Options) config() (dp.Config, error) {
	kind, err := o.Table.kind()
	if err != nil {
		return dp.Config{}, err
	}
	strat, err := o.Partition.strategy()
	if err != nil {
		return dp.Config{}, err
	}
	mode, err := o.Parallel.mode()
	if err != nil {
		return dp.Config{}, err
	}
	kern, err := o.Kernel.kernel()
	if err != nil {
		return dp.Config{}, err
	}
	root := o.RootVertex
	if root < 0 {
		root = -1
	}
	return dp.Config{
		Colors:             o.Colors,
		TableKind:          kind,
		Strategy:           strat,
		Share:              o.ShareSubtemplates,
		Mode:               mode,
		Workers:            o.Threads,
		Seed:               o.Seed,
		RootVertex:         root,
		DisableLeafSpecial: o.DisableLeafSpecial,
		Kernel:             kern,
		KeepTables:         o.KeepTables,
		Batch:              o.Batch,
		LLCBytes:           o.LLCBytes,
		MemBudgetBytes:     o.MemBudgetBytes,
		OnIteration:        o.OnIteration,
	}, nil
}

// IterationsFor returns the theoretical iteration count for an (eps,
// delta) guarantee on k-vertex templates: ceil(e^k·ln(1/delta)/eps²).
func IterationsFor(eps, delta float64, k int) int {
	return dp.IterationsFor(eps, delta, k)
}
