package fascia_test

import (
	"fmt"

	fascia "repro"
)

// ExampleCount estimates template occurrences in a synthetic network and
// compares against the exhaustive count.
func ExampleCount() {
	g := fascia.Generate("circuit", 1.0, 42) // 252-vertex circuit stand-in
	t := fascia.MustTemplate("U3-1")         // 3-vertex path

	res, err := fascia.Count(g, t, fascia.DefaultOptions().WithIterations(200).WithSeed(7))
	if err != nil {
		panic(err)
	}
	exact := fascia.ExactCount(g, t)
	fmt.Printf("exact count: %d\n", exact)
	fmt.Printf("within 5%%: %v\n", res.Count > 0.95*float64(exact) && res.Count < 1.05*float64(exact))
	// Output:
	// exact count: 1266
	// within 5%: true
}

// ExampleTemplateByName shows the paper's benchmark templates.
func ExampleTemplateByName() {
	t, _ := fascia.TemplateByName("U5-2")
	fmt.Println(t)
	fmt.Println("automorphisms:", t.Automorphisms())
	// Output:
	// U5-2 k=5 0-1 0-3 0-4 1-2
	// automorphisms: 2
}

// ExampleAllTrees enumerates the motif template populations the paper
// uses (11 trees at k=7, 106 at k=10, 551 at k=12).
func ExampleAllTrees() {
	for _, k := range []int{7, 10, 12} {
		fmt.Printf("k=%d: %d trees\n", k, len(fascia.AllTrees(k)))
	}
	// Output:
	// k=7: 11 trees
	// k=10: 106 trees
	// k=12: 551 trees
}

// ExampleIterationsFor shows how conservative the theoretical iteration
// bound is compared to the handful of iterations that suffice in practice
// (the paper's Figures 10-12).
func ExampleIterationsFor() {
	fmt.Println(fascia.IterationsFor(0.1, 0.05, 5))
	fmt.Println(fascia.IterationsFor(0.1, 0.05, 10))
	// Output:
	// 44461
	// 6598540
}

// ExampleExactCountInduced contrasts induced and non-induced counting
// (the paper's Figure 1): a 4-clique has many non-induced paths but no
// induced ones.
func ExampleExactCountInduced() {
	edges := [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	g, _ := fascia.NewGraph(4, edges, nil)
	p3 := fascia.PathTemplate(3)
	fmt.Println("non-induced:", fascia.ExactCount(g, p3))
	fmt.Println("induced:", fascia.ExactCountInduced(g, p3))
	// Output:
	// non-induced: 12
	// induced: 0
}

// ExampleCountDistributed runs the simulated distributed-memory engine;
// estimates are bit-identical to shared memory while the table is
// partitioned across ranks.
func ExampleCountDistributed() {
	g := fascia.Generate("circuit", 1.0, 42)
	t := fascia.MustTemplate("U5-1")
	opt := fascia.DefaultOptions().WithIterations(3).WithSeed(9)

	shared, _ := fascia.Count(g, t, opt)
	dist, _ := fascia.CountDistributed(g, t, 4, opt)
	fmt.Println("identical estimates:", shared.Count == dist.Count)
	fmt.Println("communicated:", dist.CommBytes > 0)
	// Output:
	// identical estimates: true
	// communicated: true
}
