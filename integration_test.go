package fascia

// Integration tests: miniature versions of each paper pipeline driven
// exclusively through the public API, complementing the per-figure
// harness in internal/experiments.

import (
	"math"
	"testing"
)

// TestPipelineCountingAccuracy mirrors Figure 10: on a small network the
// running-mean estimate converges to the exhaustive count within a few
// iterations.
func TestPipelineCountingAccuracy(t *testing.T) {
	g := Generate("circuit", 1.0, 2)
	for _, name := range []string{"U3-1", "U5-1", "U5-2"} {
		tr := MustTemplate(name)
		want := float64(ExactCount(g, tr))
		if want == 0 {
			continue
		}
		res, err := Count(g, tr, DefaultOptions().WithIterations(60).WithSeed(4))
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.Count-want) / want; rel > 0.15 {
			t.Errorf("%s: estimate %.0f, exact %.0f (rel %.3f)", name, res.Count, want, rel)
		}
	}
}

// TestPipelineLabeledPruning mirrors Figures 4/6: labels shrink both the
// counts and the table footprint.
func TestPipelineLabeledPruning(t *testing.T) {
	g := Generate("ecoli", 0.4, 3)
	AssignRandomLabels(g, 8, 5)
	base := MustTemplate("U7-1")
	labels := make([]int32, base.K())
	for i := range labels {
		labels[i] = int32(i % 8)
	}
	lt, err := base.WithLabels("U7-1-lab", labels)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions().WithIterations(2).WithSeed(7)
	un, err := Count(g, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := CountLabeled(g, lt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if lab.Count >= un.Count {
		t.Fatalf("labeled count %.0f not below unlabeled %.0f", lab.Count, un.Count)
	}
	if lab.PeakTableBytes >= un.PeakTableBytes {
		t.Fatalf("labeled tables %d B not below unlabeled %d B", lab.PeakTableBytes, un.PeakTableBytes)
	}
}

// TestPipelineMotifProfile mirrors Figures 12/13: estimated motif counts
// track the single-pass exact enumerator across all shapes.
func TestPipelineMotifProfile(t *testing.T) {
	g := Generate("hpylori", 0.5, 6)
	k := 5
	prof, err := FindMotifs("hpylori", g, k, 150, DefaultOptions().WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	enum, err := EnumerateAllTrees(g, k)
	if err != nil {
		t.Fatal(err)
	}
	merr, err := MotifMeanRelativeError(prof, enum.Counts)
	if err != nil {
		t.Fatal(err)
	}
	if merr > 0.2 {
		t.Fatalf("mean motif error %.3f", merr)
	}
}

// TestPipelineGDD mirrors Figures 15/16: estimated graphlet degree
// distributions agree with exact ones, improving with iterations.
func TestPipelineGDD(t *testing.T) {
	g := Generate("celegans", 0.3, 4)
	tr := MustTemplate("U5-2")
	exactDist := ExactGraphletDegrees(g, tr, 0)
	var prev float64 = -1
	for _, iters := range []int{1, 200} {
		est, err := GraphletDegrees(g, tr, 0, iters, DefaultOptions().WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		agree := GDDAgreement(est, exactDist)
		if agree < 0.3 {
			t.Fatalf("agreement %.3f at %d iterations implausibly low", agree, iters)
		}
		if prev >= 0 && agree < prev-0.25 {
			t.Fatalf("agreement collapsed: %.3f -> %.3f", prev, agree)
		}
		prev = agree
	}
}

// TestPipelineEnumerationSampling verifies the enumeration side: sampled
// embeddings are genuine, distinct occurrences with high probability.
func TestPipelineEnumerationSampling(t *testing.T) {
	g := Generate("gnp", 0.02, 5)
	tr := MustTemplate("U5-1")
	embs, err := SampleEmbeddings(g, tr, DefaultOptions().WithIterations(30).WithSeed(6), 25)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, emb := range embs {
		if err := e.VerifyEmbedding(emb); err != nil {
			t.Fatal(err)
		}
		key := ""
		for _, v := range emb.Mapping {
			key += string(rune(v)) + ","
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("sampling returned %d distinct embeddings from 25 draws", len(distinct))
	}
}

// TestPipelineAllParallelModesAgree runs the same workload through every
// parallelization mode and the distributed runtime; all per-iteration
// estimates must be identical.
func TestPipelineAllParallelModesAgree(t *testing.T) {
	g := Generate("circuit", 1.0, 8)
	tr := MustTemplate("U5-2")
	opt := DefaultOptions().WithIterations(5).WithSeed(11).WithThreads(4)
	var base []float64
	for _, mode := range []ParallelMode{ParallelInner, ParallelOuter, ParallelHybrid} {
		res, err := Count(g, tr, opt.WithParallel(mode))
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res.PerIteration
			continue
		}
		for i := range base {
			if res.PerIteration[i] != base[i] {
				t.Fatalf("%v diverged at iteration %d", mode, i)
			}
		}
	}
	dres, err := CountDistributed(g, tr, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if dres.PerIteration[i] != base[i] {
			t.Fatalf("distributed diverged at iteration %d", i)
		}
	}
}

// TestPipelineTableLayoutsAgree runs the same seed through all table
// layouts; estimates must be bit-identical.
func TestPipelineTableLayoutsAgree(t *testing.T) {
	g := Generate("hpylori", 0.6, 2)
	tr := MustTemplate("U5-1")
	opt := DefaultOptions().WithIterations(3).WithSeed(13)
	var base []float64
	for _, layout := range []TableLayout{TableLazy, TableNaive, TableHash, TableSuccinct} {
		res, err := Count(g, tr, opt.WithTable(layout))
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res.PerIteration
			continue
		}
		for i := range base {
			if res.PerIteration[i] != base[i] {
				t.Fatalf("%v diverged at iteration %d", layout, i)
			}
		}
	}
}

// TestPipelineFileWorkflow exercises the generate → save → load → count
// workflow users of the CLI tools follow.
func TestPipelineFileWorkflow(t *testing.T) {
	dir := t.TempDir()
	g := Generate("circuit", 1.0, 3)
	AssignRandomLabels(g, 4, 1)
	for _, path := range []string{dir + "/g.txt", dir + "/g.bin"} {
		if err := SaveGraph(path, g); err != nil {
			t.Fatal(err)
		}
		g2, err := LoadGraph(path)
		if err != nil {
			t.Fatal(err)
		}
		res1, err := Count(g, MustTemplate("U3-1"), DefaultOptions().WithIterations(2).WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		res2, err := Count(g2, MustTemplate("U3-1"), DefaultOptions().WithIterations(2).WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		if res1.Count != res2.Count {
			t.Fatalf("%s: count changed across save/load: %v vs %v", path, res1.Count, res2.Count)
		}
	}
}
