package fascia

import "testing"

// TestMergeIterations checks the cache-merge identity that fasciad's
// seed-keyed cache relies on: a 6-iteration run at seed s merged with a
// 4-iteration run at seed s+6 is bit-identical to a 10-iteration run at
// seed s.
func TestMergeIterations(t *testing.T) {
	g := testGraph(8)
	tr := PathTemplate(5)
	const seed = 31

	full, err := Count(g, tr, DefaultOptions().WithIterations(10).WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := Count(g, tr, DefaultOptions().WithIterations(6).WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	residual, err := Count(g, tr, DefaultOptions().WithIterations(4).WithSeed(seed+6))
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeIterations(prefix.PerIteration, residual)
	if merged.Count != full.Count || merged.StdErr != full.StdErr {
		t.Fatalf("merged (count %v ± %v) != full run (count %v ± %v)",
			merged.Count, merged.StdErr, full.Count, full.StdErr)
	}
	if merged.Iterations != 10 || merged.Stats.Iterations != 10 {
		t.Fatalf("merged iterations = %d/%d, want 10", merged.Iterations, merged.Stats.Iterations)
	}
	if merged.Stats.CachedIterations != 6 {
		t.Fatalf("CachedIterations = %d, want 6", merged.Stats.CachedIterations)
	}
	for i, x := range merged.PerIteration {
		if x != full.PerIteration[i] {
			t.Fatalf("merged iteration %d: %v != %v", i, x, full.PerIteration[i])
		}
	}

	// Empty prior is the identity.
	same := MergeIterations(nil, residual)
	if same.Count != residual.Count || same.Stats.CachedIterations != 0 {
		t.Fatalf("nil-prior merge changed the result: %+v", same)
	}

	// prior must be copied, not aliased.
	prior := []float64{1, 2}
	m := MergeIterations(prior, Result{})
	prior[0] = 99
	if m.PerIteration[0] != 1 {
		t.Fatal("MergeIterations aliased the prior slice")
	}
	if m.Count != 1.5 || m.Iterations != 2 {
		t.Fatalf("pure-cache merge = %+v", m)
	}
}

// TestOptionsFingerprint pins the fingerprint contract: execution knobs
// proven bit-identical by the property tests do not change it; knobs
// that change the estimate stream do.
func TestOptionsFingerprint(t *testing.T) {
	base := DefaultOptions()
	fp := base.Fingerprint()

	// Execution / lifecycle knobs leave the fingerprint unchanged.
	same := []Options{
		base.WithTable(TableHash),
		base.WithKernel(KernelAggregate),
		base.WithBatch(8),
		base.WithParallel(ParallelOuter),
		base.WithThreads(4),
		base.WithIterations(500),
		base.WithSeed(123),
	}
	for i, o := range same {
		if o.Fingerprint() != fp {
			t.Errorf("execution variant %d changed the fingerprint: %q vs %q", i, o.Fingerprint(), fp)
		}
	}

	// Result-relevant knobs must change it.
	diffColors := base
	diffColors.Colors = 7
	diffPart := base.WithPartition(PartitionBalanced)
	diffShare := base
	diffShare.ShareSubtemplates = true
	diffRoot := base
	diffRoot.RootVertex = 2
	seen := map[string]string{fp: "base"}
	for _, v := range []struct {
		name string
		o    Options
	}{{"colors", diffColors}, {"partition", diffPart}, {"share", diffShare}, {"root", diffRoot}} {
		got := v.o.Fingerprint()
		if prev, dup := seen[got]; dup {
			t.Errorf("%s collides with %s: %q", v.name, prev, got)
		}
		seen[got] = v.name
	}
}
