package fascia

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/dp"
)

// TestCountContextCancelled checks the public counting entry points honor
// a pre-cancelled context: no iterations run, the context error is
// returned, and the observability snapshot marks the run cancelled.
func TestCountContextCancelled(t *testing.T) {
	g := testGraph(21)
	tr := PathTemplate(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := CountContext(ctx, g, tr, DefaultOptions().WithIterations(50))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CountContext err = %v, want context.Canceled", err)
	}
	if res.Iterations != 0 || len(res.PerIteration) != 0 {
		t.Fatalf("pre-cancelled count ran %d iterations", res.Iterations)
	}
	if !res.Stats.Cancelled {
		t.Error("Stats.Cancelled not set")
	}

	if _, err := CountConvergedContext(ctx, g, tr, 0.01, 100, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("CountConvergedContext err = %v, want context.Canceled", err)
	}
	if _, err := SampleEmbeddingsContext(ctx, g, tr, DefaultOptions().WithIterations(5), 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("SampleEmbeddingsContext err = %v, want context.Canceled", err)
	}
}

// TestCountContextMidRunCancel cancels a many-iteration run shortly after
// it starts and checks a partial mean over completed iterations comes
// back alongside the context error.
func TestCountContextMidRunCancel(t *testing.T) {
	g := ErdosRenyi(400, 4000, 7)
	tr := PathTemplate(8)
	e, err := NewEngine(g, tr, DefaultOptions().WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	// Calibrate: one iteration's duration decides how long to let the
	// cancelled run proceed so some (but not all) iterations complete.
	start := time.Now()
	if _, err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	per := time.Since(start)
	iters := 2000

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(3*per+5*time.Millisecond, cancel)
	defer timer.Stop()
	res, err := e.RunContext(ctx, iters)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iterations >= iters {
		t.Fatalf("all %d iterations completed despite cancellation", iters)
	}
	if res.Iterations > 0 && (res.Count <= 0 || math.IsNaN(res.Count)) {
		t.Fatalf("partial result has bad count %v over %d iterations", res.Count, res.Iterations)
	}
	if !res.Stats.Cancelled {
		t.Error("Stats.Cancelled not set")
	}
}

// TestOptionsTimeout checks Options.Timeout bounds runs through every
// entry point that honors it, surfacing context.DeadlineExceeded.
func TestOptionsTimeout(t *testing.T) {
	g := ErdosRenyi(400, 4000, 9)
	tr := PathTemplate(8)
	opt := DefaultOptions().WithIterations(100000).WithTimeout(30 * time.Millisecond)
	start := time.Now()
	res, err := Count(g, tr, opt)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res.Iterations >= 100000 {
		t.Fatal("timeout did not interrupt the run")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timed-out run took %v", elapsed)
	}
	if !res.Stats.Cancelled {
		t.Error("Stats.Cancelled not set on timeout")
	}
}

// TestCountConvergedMinIters checks the minimum-iteration floor: the
// adaptive runner must execute max(2, opt.Iterations) iterations before
// convergence may stop it, even under a tolerance it meets immediately.
func TestCountConvergedMinIters(t *testing.T) {
	g := testGraph(31)
	tr := PathTemplate(4)
	// A huge tolerance converges at the first opportunity, so the floor
	// alone decides the iteration count.
	res, err := CountConverged(g, tr, 100.0, 1000, DefaultOptions().WithSeed(2).WithIterations(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 5 {
		t.Fatalf("opt.Iterations=5 but converged run stopped after %d iterations", res.Iterations)
	}
	// Without opt.Iterations the floor is 2 (a standard error needs two
	// samples).
	res, err = CountConverged(g, tr, 100.0, 1000, DefaultOptions().WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("converged run stopped after %d iterations, want >= 2", res.Iterations)
	}
}

// TestSampleEmbeddingsDeterministic checks sampling is reproducible for a
// fixed seed and that retry seeds are decorrelated from the base seed
// schedule (mixSeed(base, i) must avoid the caller's own base+i runs).
func TestSampleEmbeddingsDeterministic(t *testing.T) {
	g := testGraph(5)
	tr := MustTemplate("U5-2")
	opt := DefaultOptions().WithIterations(20).WithSeed(2)
	a, err := SampleEmbeddings(g, tr, opt, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleEmbeddings(g, tr, opt, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("got %d and %d embeddings, want 5 each", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Mapping) != len(b[i].Mapping) {
			t.Fatalf("embedding %d sizes differ", i)
		}
		for j := range a[i].Mapping {
			if a[i].Mapping[j] != b[i].Mapping[j] {
				t.Fatalf("embedding %d not reproducible: %v vs %v", i, a[i].Mapping, b[i].Mapping)
			}
		}
	}
	// Seed mixing: no retry seed may collide with the naive base+i
	// schedule of independent runs (the bug the mixer fixes).
	const base = 2
	for i := 0; i < 64; i++ {
		got := mixSeed(base, i)
		for j := 0; j < 64; j++ {
			if got == base+int64(j) {
				t.Fatalf("mixSeed(%d, %d) = %d collides with base+%d", base, i, got, j)
			}
		}
		for j := 0; j < i; j++ {
			if mixSeed(base, j) == got {
				t.Fatalf("mixSeed repeats at retries %d and %d", j, i)
			}
		}
	}
}

// TestFromDPModeMapping checks the internal result translation covers
// every parallel mode and surfaces unknown modes verbatim instead of
// collapsing them to the zero value.
func TestFromDPModeMapping(t *testing.T) {
	cases := []struct {
		in   dp.Mode
		want ParallelMode
	}{
		{dp.Auto, ParallelAuto},
		{dp.Inner, ParallelInner},
		{dp.Outer, ParallelOuter},
		{dp.Hybrid, ParallelHybrid},
	}
	for _, c := range cases {
		out := fromDP(dp.Result{ModeUsed: c.in})
		if out.Parallel != c.want {
			t.Errorf("fromDP(%v).Parallel = %v, want %v", c.in, out.Parallel, c.want)
		}
	}
	// An out-of-range internal mode must not masquerade as ParallelAuto.
	if out := fromDP(dp.Result{ModeUsed: dp.Mode(97)}); out.Parallel == ParallelAuto {
		t.Error("unknown internal mode collapsed to ParallelAuto")
	}
	// Zero-iteration (cancelled) results still report the resolved mode.
	if out := fromDP(dp.Result{ModeUsed: dp.Inner}); out.Parallel != ParallelInner || out.Iterations != 0 {
		t.Errorf("zero-iteration translation: parallel=%v iterations=%d", out.Parallel, out.Iterations)
	}
}

// TestOnIterationPublic checks the Options.OnIteration hook fires once
// per completed iteration through the public Count entry point.
func TestOnIterationPublic(t *testing.T) {
	g := testGraph(41)
	tr := PathTemplate(4)
	var calls int
	var lastElapsed time.Duration
	opt := DefaultOptions().WithIterations(6).WithSeed(8).
		WithOnIteration(func(i int, est float64, elapsed time.Duration) {
			calls++
			if i < 0 || i >= 6 {
				t.Errorf("iteration index %d out of range", i)
			}
			if math.IsNaN(est) {
				t.Errorf("iteration %d: NaN estimate", i)
			}
			lastElapsed = elapsed
		})
	res, err := Count(g, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Fatalf("OnIteration fired %d times, want 6", calls)
	}
	if lastElapsed <= 0 {
		t.Error("elapsed never set")
	}
	if res.Stats.Iterations != 6 || len(res.Stats.IterTimes) != 6 {
		t.Fatalf("Stats: iterations=%d iterTimes=%d", res.Stats.Iterations, len(res.Stats.IterTimes))
	}
}
