package fascia

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

// Graph is an undirected graph in CSR form with optional vertex labels.
// It is an alias of the internal graph type, so all its methods (N, M,
// Adj, Degree, Label, ComputeStats, ...) are available to callers.
type Graph = graph.Graph

// Template is an undirected connected template with optional vertex
// labels. Tree templates run the paper's partition-tree DP; non-tree
// templates (treewidth <= 2, plus K4) run the tree-decomposition bag DP.
type Template = tmpl.Template

// Embedding is one occurrence of a template: Mapping[i] is the graph
// vertex that template vertex i maps to.
type Embedding = dp.Embedding

// RunStats is the per-run observability snapshot: per-subtemplate-node
// wall times, per-iteration timings, kernel decisions, and table row
// traffic. See the dp package for field documentation.
type RunStats = dp.RunStats

// NodeStat is one partition-tree node's accumulated compute time within
// a RunStats snapshot.
type NodeStat = dp.NodeStat

// Result reports a counting run.
type Result struct {
	// Count is the estimated number of non-induced occurrences.
	Count float64
	// PerIteration holds each iteration's individual estimate. For a
	// cancelled run it holds only the completed iterations.
	PerIteration []float64
	// StdErr is the standard error of the mean across iterations.
	StdErr float64
	// PeakTableBytes is the peak dynamic-table footprint of any single
	// iteration (the quantity of Figures 6 and 7).
	PeakTableBytes int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Iterations is the number of iterations executed.
	Iterations int
	// Parallel is the resolved parallelization mode.
	Parallel ParallelMode
	// Stats is the run's observability snapshot (node times, iteration
	// times, kernel decisions, row traffic).
	Stats RunStats
}

func fromDP(res dp.Result) Result {
	out := Result{
		Count:          res.Estimate,
		PerIteration:   res.PerIteration,
		StdErr:         res.StdErr,
		PeakTableBytes: res.PeakTableBytes,
		Elapsed:        res.Elapsed,
		Iterations:     len(res.PerIteration),
		Stats:          res.Stats,
	}
	// The resolved mode is reported even for zero-iteration (cancelled
	// or empty) runs, and an unknown internal mode is surfaced verbatim
	// rather than silently collapsing to the ParallelAuto zero value.
	switch res.ModeUsed {
	case dp.Auto:
		out.Parallel = ParallelAuto
	case dp.Inner:
		out.Parallel = ParallelInner
	case dp.Outer:
		out.Parallel = ParallelOuter
	case dp.Hybrid:
		out.Parallel = ParallelHybrid
	default:
		out.Parallel = ParallelMode(res.ModeUsed)
	}
	return out
}

// Engine is a reusable counter for one (graph, template) pair: the
// partition tree and combinatorial index tables are built once and reused
// across runs.
type Engine struct {
	inner *dp.Engine
	// timeout, when positive, bounds every run (Options.Timeout).
	timeout time.Duration
}

// NewEngine builds an engine for counting occurrences of t in g.
func NewEngine(g *Graph, t *Template, opt Options) (*Engine, error) {
	cfg, err := opt.config()
	if err != nil {
		return nil, err
	}
	e, err := dp.New(g, t, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: e, timeout: opt.Timeout}, nil
}

// runCtx applies the engine's Options.Timeout on top of ctx.
func (e *Engine) runCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if e.timeout > 0 {
		return context.WithTimeout(ctx, e.timeout)
	}
	return ctx, func() {}
}

// Run executes n color-coding iterations and returns the averaged
// estimate. It honors Options.Timeout; use RunContext for caller-driven
// cancellation.
func (e *Engine) Run(n int) (Result, error) {
	return e.RunContext(context.Background(), n)
}

// RunContext is Run with cooperative cancellation: ctx is polled at
// iteration boundaries and at vertex granularity inside every DP pass,
// so all parallel modes abort promptly. On cancellation (or
// Options.Timeout expiry) it returns the partial result — the mean over
// completed iterations, with Result.Stats.Cancelled set — alongside the
// context's error.
func (e *Engine) RunContext(ctx context.Context, n int) (Result, error) {
	ctx, cancel := e.runCtx(ctx)
	defer cancel()
	res, err := e.inner.RunContext(ctx, n)
	if err != nil {
		return fromDP(res), err
	}
	return fromDP(res), nil
}

// VertexCounts estimates each vertex's graphlet degree for the template's
// root orbit (see Options.RootVertex), averaged over n iterations.
func (e *Engine) VertexCounts(n int) ([]float64, error) {
	return e.VertexCountsContext(context.Background(), n)
}

// VertexCountsContext is VertexCounts with cooperative cancellation; on
// cancellation it returns partial estimates rescaled to the completed
// iterations alongside the context's error.
func (e *Engine) VertexCountsContext(ctx context.Context, n int) ([]float64, error) {
	ctx, cancel := e.runCtx(ctx)
	defer cancel()
	return e.inner.VertexCountsContext(ctx, n)
}

// SampleEmbeddings draws count colorful embeddings from the engine's last
// run; the engine must have been created with Options.KeepTables.
func (e *Engine) SampleEmbeddings(rng *rand.Rand, count int) ([]Embedding, error) {
	return e.inner.SampleEmbeddings(rng, count)
}

// VerifyEmbedding checks that an embedding is a genuine occurrence.
func (e *Engine) VerifyEmbedding(emb Embedding) error {
	return e.inner.VerifyEmbedding(emb)
}

// Count estimates the number of non-induced occurrences of the tree
// template t in g, running opt.Iterations color-coding iterations (or the
// count derived from opt.Epsilon/Delta).
func Count(g *Graph, t *Template, opt Options) (Result, error) {
	return CountContext(context.Background(), g, t, opt)
}

// adaptiveMaxIters caps an Options.Adaptive run when the caller set no
// explicit Iterations ceiling.
const adaptiveMaxIters = 1_000_000

// CountContext is Count with cooperative cancellation (and
// Options.Timeout): cancelling ctx aborts the run within milliseconds of
// DP work and returns the partial estimate alongside the context error.
// With Options.Adaptive set, the fixed iteration count is replaced by
// variance-targeted stopping: iterations run (same seed schedule, so
// the result is a prefix of the fixed run's) until the relative
// standard error drops below Adaptive, Options.Iterations > 1 capping
// the run (otherwise a 1M-iteration safety cap applies).
func CountContext(ctx context.Context, g *Graph, t *Template, opt Options) (Result, error) {
	e, err := NewEngine(g, t, opt)
	if err != nil {
		return Result{}, err
	}
	if opt.Adaptive > 0 {
		maxIters := opt.Iterations
		if maxIters < 2 {
			maxIters = adaptiveMaxIters
		}
		return e.RunConvergedContext(ctx, opt.Adaptive, 2, maxIters)
	}
	return e.RunContext(ctx, opt.iterations(t.K()))
}

// CountLabeled is Count for labeled graphs and templates; it exists for
// discoverability and validates that both sides carry labels (Count also
// handles labeled inputs).
func CountLabeled(g *Graph, t *Template, opt Options) (Result, error) {
	if !t.Labeled() {
		return Result{}, fmt.Errorf("fascia: CountLabeled requires a labeled template")
	}
	if g.Labels == nil {
		return Result{}, fmt.Errorf("fascia: CountLabeled requires a labeled graph")
	}
	return Count(g, t, opt)
}

// VertexCounts estimates per-vertex graphlet degrees for the orbit of the
// template vertex selected by opt.RootVertex, averaged over
// opt.Iterations iterations.
func VertexCounts(g *Graph, t *Template, opt Options) ([]float64, error) {
	e, err := NewEngine(g, t, opt)
	if err != nil {
		return nil, err
	}
	return e.VertexCounts(opt.iterations(t.K()))
}

// MergeIterations prepends previously computed per-iteration estimates
// to a fresh run's result and recomputes the aggregate statistics, as if
// a single run had produced all of them. It is the merge step of
// seed-keyed result caching: when estimates for seeds
// [Seed, Seed+len(prior)) are already known, a residual run with
// Options.Seed = Seed+len(prior) produces exactly the remaining
// estimates (iteration i always colors with Seed+i), and merging yields
// a result bit-identical to running the full range from scratch.
//
// Count, StdErr, Iterations, and PerIteration are recomputed over the
// concatenation; Stats.CachedIterations records len(prior); Elapsed,
// PeakTableBytes, and the remaining Stats fields describe only the
// fresh run. prior is copied, never aliased.
func MergeIterations(prior []float64, res Result) Result {
	if len(prior) == 0 {
		return res
	}
	merged := make([]float64, 0, len(prior)+len(res.PerIteration))
	merged = append(merged, prior...)
	merged = append(merged, res.PerIteration...)
	res.PerIteration = merged
	res.Iterations = len(merged)
	res.Stats.Iterations = len(merged)
	res.Stats.CachedIterations = len(prior)
	var sum float64
	for _, x := range merged {
		sum += x
	}
	res.Count = sum / float64(len(merged))
	res.StdErr = 0
	if n := len(merged); n > 1 {
		var ss float64
		for _, x := range merged {
			d := x - res.Count
			ss += d * d
		}
		res.StdErr = math.Sqrt(ss / float64(n-1) / float64(n))
	}
	return res
}

// mixSeed decorrelates retry seeds: a splitmix64-style avalanche of
// (base, i) so that retry i's coloring shares nothing with the colorings
// of an independent run seeded base+i (a plain base+i retry schedule
// collides with the caller's own Seed+1, Seed+2, ... runs).
func mixSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SampleEmbeddings runs one counting iteration with retained tables and
// draws count colorful embeddings from it — FASCIA's enumeration mode.
// Each returned embedding is a verified non-induced occurrence of t.
// Colorful embeddings can be absent under an unlucky coloring, so up to
// opt.iterations colorings are attempted; the engine (partition tree,
// split tables) is built once and reseeded per retry with a mixed seed
// that cannot collide with independent runs at Seed+1, Seed+2, ...
func SampleEmbeddings(g *Graph, t *Template, opt Options, count int) ([]Embedding, error) {
	return SampleEmbeddingsContext(context.Background(), g, t, opt, count)
}

// SampleEmbeddingsContext is SampleEmbeddings with cooperative
// cancellation of the underlying counting runs.
func SampleEmbeddingsContext(ctx context.Context, g *Graph, t *Template, opt Options, count int) ([]Embedding, error) {
	opt.KeepTables = true
	iters := opt.iterations(t.K())
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5eed))
	base := opt.Seed
	e, err := NewEngine(g, t, opt)
	if err != nil {
		return nil, err
	}
	// Retry with fresh colorings like repeated Algorithm 1 rounds,
	// reusing the one engine; only the coloring seed changes per retry.
	var lastErr error
	for i := 0; i < iters; i++ {
		e.inner.Reseed(mixSeed(base, i))
		e.inner.ReleaseKept()
		if _, err := e.inner.RunContext(ctx, 1); err != nil {
			return nil, err
		}
		embs, err := e.SampleEmbeddings(rng, count)
		if err == nil {
			return embs, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// RunConverged runs iterations adaptively until the relative standard
// error of the estimate drops below relStdErr (bounded by minIters and
// maxIters) — automated "enough iterations" in place of the conservative
// theoretical bound.
func (e *Engine) RunConverged(relStdErr float64, minIters, maxIters int) (Result, error) {
	return e.RunConvergedContext(context.Background(), relStdErr, minIters, maxIters)
}

// RunConvergedContext is RunConverged with cooperative cancellation; on
// cancellation it returns the partial result alongside the context's
// error.
func (e *Engine) RunConvergedContext(ctx context.Context, relStdErr float64, minIters, maxIters int) (Result, error) {
	ctx, cancel := e.runCtx(ctx)
	defer cancel()
	res, err := e.inner.RunConvergedContext(ctx, relStdErr, minIters, maxIters)
	if err != nil {
		return fromDP(res), err
	}
	return fromDP(res), nil
}

// RunConvergedResidualContext is RunConvergedContext seeded with prior
// per-iteration estimates already known from elsewhere (a seed-keyed
// cache, an earlier shard wave): the convergence accumulator starts
// from prior, the iteration bounds count prior toward the totals, and
// only the residual iterations the target still needs are computed.
// The engine must have been built with Options.Seed offset by
// len(prior) so the fresh iterations continue the global seed schedule
// (iteration i always colors with Seed+i). The returned result is the
// MergeIterations of prior and the fresh run — PerIteration spans both,
// Stats.CachedIterations records len(prior) — so a converged residual
// run is bit-identical to the prefix of a fixed run over the full
// schedule.
func (e *Engine) RunConvergedResidualContext(ctx context.Context, relStdErr float64, minIters, maxIters int, prior []float64) (Result, error) {
	ctx, cancel := e.runCtx(ctx)
	defer cancel()
	res, err := e.inner.RunConvergedPriorContext(ctx, relStdErr, minIters, maxIters, prior)
	return MergeIterations(prior, fromDP(res)), err
}

// CountConvergedResidualContext builds an engine at opt and runs
// RunConvergedResidualContext — the one-shot entry point serving
// layers use to top up cached estimates to a variance target.
func CountConvergedResidualContext(ctx context.Context, g *Graph, t *Template, relStdErr float64, maxIters int, opt Options, prior []float64) (Result, error) {
	e, err := NewEngine(g, t, opt)
	if err != nil {
		return Result{}, err
	}
	return e.RunConvergedResidualContext(ctx, relStdErr, 2, maxIters, prior)
}

// CountConverged estimates the count, running iterations until the
// relative standard error falls below relStdErr (at most maxIters). The
// minimum iteration count is max(2, opt.Iterations): at least two
// iterations are always run (a standard error needs them), and a caller
// who sets opt.Iterations asks for at least that many before convergence
// may stop the run. opt.Iterations must not exceed maxIters.
func CountConverged(g *Graph, t *Template, relStdErr float64, maxIters int, opt Options) (Result, error) {
	return CountConvergedContext(context.Background(), g, t, relStdErr, maxIters, opt)
}

// CountConvergedContext is CountConverged with cooperative cancellation
// (and Options.Timeout).
func CountConvergedContext(ctx context.Context, g *Graph, t *Template, relStdErr float64, maxIters int, opt Options) (Result, error) {
	e, err := NewEngine(g, t, opt)
	if err != nil {
		return Result{}, err
	}
	minIters := 2
	if opt.Iterations > minIters {
		minIters = opt.Iterations
	}
	return e.RunConvergedContext(ctx, relStdErr, minIters, maxIters)
}
