package fascia

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/tmpl"
)

// Graph is an undirected graph in CSR form with optional vertex labels.
// It is an alias of the internal graph type, so all its methods (N, M,
// Adj, Degree, Label, ComputeStats, ...) are available to callers.
type Graph = graph.Graph

// Template is an undirected tree template with optional vertex labels.
type Template = tmpl.Template

// Embedding is one occurrence of a template: Mapping[i] is the graph
// vertex that template vertex i maps to.
type Embedding = dp.Embedding

// Result reports a counting run.
type Result struct {
	// Count is the estimated number of non-induced occurrences.
	Count float64
	// PerIteration holds each iteration's individual estimate.
	PerIteration []float64
	// StdErr is the standard error of the mean across iterations.
	StdErr float64
	// PeakTableBytes is the peak dynamic-table footprint of any single
	// iteration (the quantity of Figures 6 and 7).
	PeakTableBytes int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Iterations is the number of iterations executed.
	Iterations int
	// Parallel is the resolved parallelization mode.
	Parallel ParallelMode
}

func fromDP(res dp.Result) Result {
	out := Result{
		Count:          res.Estimate,
		PerIteration:   res.PerIteration,
		StdErr:         res.StdErr,
		PeakTableBytes: res.PeakTableBytes,
		Elapsed:        res.Elapsed,
		Iterations:     len(res.PerIteration),
	}
	switch res.ModeUsed {
	case dp.Inner:
		out.Parallel = ParallelInner
	case dp.Outer:
		out.Parallel = ParallelOuter
	case dp.Hybrid:
		out.Parallel = ParallelHybrid
	}
	return out
}

// Engine is a reusable counter for one (graph, template) pair: the
// partition tree and combinatorial index tables are built once and reused
// across runs.
type Engine struct {
	inner *dp.Engine
}

// NewEngine builds an engine for counting occurrences of t in g.
func NewEngine(g *Graph, t *Template, opt Options) (*Engine, error) {
	cfg, err := opt.config()
	if err != nil {
		return nil, err
	}
	e, err := dp.New(g, t, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: e}, nil
}

// Run executes n color-coding iterations and returns the averaged
// estimate.
func (e *Engine) Run(n int) (Result, error) {
	res, err := e.inner.Run(n)
	if err != nil {
		return Result{}, err
	}
	return fromDP(res), nil
}

// VertexCounts estimates each vertex's graphlet degree for the template's
// root orbit (see Options.RootVertex), averaged over n iterations.
func (e *Engine) VertexCounts(n int) ([]float64, error) {
	return e.inner.VertexCounts(n)
}

// SampleEmbeddings draws count colorful embeddings from the engine's last
// run; the engine must have been created with Options.KeepTables.
func (e *Engine) SampleEmbeddings(rng *rand.Rand, count int) ([]Embedding, error) {
	return e.inner.SampleEmbeddings(rng, count)
}

// VerifyEmbedding checks that an embedding is a genuine occurrence.
func (e *Engine) VerifyEmbedding(emb Embedding) error {
	return e.inner.VerifyEmbedding(emb)
}

// Count estimates the number of non-induced occurrences of the tree
// template t in g, running opt.Iterations color-coding iterations (or the
// count derived from opt.Epsilon/Delta).
func Count(g *Graph, t *Template, opt Options) (Result, error) {
	e, err := NewEngine(g, t, opt)
	if err != nil {
		return Result{}, err
	}
	return e.Run(opt.iterations(t.K()))
}

// CountLabeled is Count for labeled graphs and templates; it exists for
// discoverability and validates that both sides carry labels (Count also
// handles labeled inputs).
func CountLabeled(g *Graph, t *Template, opt Options) (Result, error) {
	if !t.Labeled() {
		return Result{}, fmt.Errorf("fascia: CountLabeled requires a labeled template")
	}
	if g.Labels == nil {
		return Result{}, fmt.Errorf("fascia: CountLabeled requires a labeled graph")
	}
	return Count(g, t, opt)
}

// VertexCounts estimates per-vertex graphlet degrees for the orbit of the
// template vertex selected by opt.RootVertex, averaged over
// opt.Iterations iterations.
func VertexCounts(g *Graph, t *Template, opt Options) ([]float64, error) {
	e, err := NewEngine(g, t, opt)
	if err != nil {
		return nil, err
	}
	return e.VertexCounts(opt.iterations(t.K()))
}

// SampleEmbeddings runs one counting iteration with retained tables and
// draws count colorful embeddings from it — FASCIA's enumeration mode.
// Each returned embedding is a verified non-induced occurrence of t.
func SampleEmbeddings(g *Graph, t *Template, opt Options, count int) ([]Embedding, error) {
	opt.KeepTables = true
	iters := opt.iterations(t.K())
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5eed))
	// Colorful embeddings can be absent under an unlucky coloring; retry
	// with fresh colorings like repeated Algorithm 1 rounds.
	var lastErr error
	base := opt.Seed
	for i := 0; i < iters; i++ {
		opt.Seed = base + int64(i)
		e, err := NewEngine(g, t, opt)
		if err != nil {
			return nil, err
		}
		if _, err := e.inner.Run(1); err != nil {
			return nil, err
		}
		embs, err := e.SampleEmbeddings(rng, count)
		if err == nil {
			return embs, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// RunConverged runs iterations adaptively until the relative standard
// error of the estimate drops below relStdErr (bounded by minIters and
// maxIters) — automated "enough iterations" in place of the conservative
// theoretical bound.
func (e *Engine) RunConverged(relStdErr float64, minIters, maxIters int) (Result, error) {
	res, err := e.inner.RunConverged(relStdErr, minIters, maxIters)
	if err != nil {
		return Result{}, err
	}
	return fromDP(res), nil
}

// CountConverged estimates the count, running iterations until the
// relative standard error falls below relStdErr (at most maxIters).
func CountConverged(g *Graph, t *Template, relStdErr float64, maxIters int, opt Options) (Result, error) {
	e, err := NewEngine(g, t, opt)
	if err != nil {
		return Result{}, err
	}
	return e.RunConverged(relStdErr, 2, maxIters)
}
