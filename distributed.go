package fascia

import (
	"context"

	"repro/internal/dist"
	"repro/internal/part"
)

// DistributedResult reports a simulated distributed-memory counting run:
// the estimate plus the communication and per-rank memory costs a real
// MPI deployment would incur.
type DistributedResult struct {
	// Count is the estimated number of non-induced occurrences.
	Count float64
	// PerIteration holds each iteration's estimate (bit-identical to the
	// shared-memory engine under the same seed).
	PerIteration []float64
	// CommBytes is the total inter-rank payload (ghost rows + ids).
	CommBytes int64
	// Messages is the number of point-to-point messages.
	Messages int64
	// MaxRankRows is the largest per-subtemplate row count held by any
	// rank — the per-node memory bound the partitioning buys.
	MaxRankRows int
}

// CountDistributed estimates the template count using the simulated
// distributed-memory runtime (the paper's stated future work): the
// dynamic-programming table is block-partitioned across ranks, which
// exchange boundary rows by message passing before every DP step.
// Labeled templates are supported (labels prune rank-local leaf rows).
// Iterations and seed come from opt; table layout and parallel-mode
// options do not apply (each rank owns a dense slice of rows).
func CountDistributed(g *Graph, t *Template, ranks int, opt Options) (DistributedResult, error) {
	return CountDistributedContext(context.Background(), g, t, ranks, opt)
}

// CountDistributedContext is CountDistributed with cooperative
// cancellation: each rank completes the current iteration's
// message-passing protocol (skipping the compute, so no rank deadlocks),
// the partial iteration is discarded, and the mean over completed
// iterations is returned alongside the context's error.
func CountDistributedContext(ctx context.Context, g *Graph, t *Template, ranks int, opt Options) (DistributedResult, error) {
	strat := part.OneAtATime
	if opt.Partition == PartitionBalanced {
		strat = part.Balanced
	}
	e, err := dist.New(g, t, dist.Config{
		Ranks:    ranks,
		Colors:   opt.Colors,
		Strategy: strat,
		Seed:     opt.Seed,
	})
	if err != nil {
		return DistributedResult{}, err
	}
	res, err := e.RunContext(ctx, opt.iterations(t.K()))
	if err != nil {
		return DistributedResult{}, err
	}
	return DistributedResult{
		Count:        res.Estimate,
		PerIteration: res.PerIteration,
		CommBytes:    res.CommBytes,
		Messages:     res.Messages,
		MaxRankRows:  res.MaxRankRows,
	}, nil
}
