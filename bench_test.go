package fascia

// One benchmark per table/figure of the paper's evaluation, plus
// ablations (see DESIGN.md §4). Benchmarks run on scaled-down networks so
// `go test -bench=.` finishes on a laptop; the cmd/fasciabench tool runs
// the same experiments with larger (or -full paper-scale) workloads.
// Accuracy-shaped figures (10-12, 16) report their error/agreement as
// custom metrics alongside time.

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/dp"
	"repro/internal/enumerate"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/motif"
	"repro/internal/part"
	"repro/internal/table"
	"repro/internal/tmpl"
)

// benchGraphs caches generated networks across benchmarks.
var benchGraphs sync.Map

// benchNet returns a cached scaled network. Million-vertex presets are
// shrunk harder, like experiments.Quick.
func benchNet(name string, scale float64) *Graph {
	key := fmt.Sprintf("%s@%g", name, scale)
	if g, ok := benchGraphs.Load(key); ok {
		return g.(*Graph)
	}
	pre, err := gen.ByName(name)
	if err != nil {
		panic(err)
	}
	g := pre.Build(scale, 1)
	benchGraphs.Store(key, g)
	return g
}

func benchCfg(seed int64) dp.Config {
	cfg := dp.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

// oneIteration runs a single DP iteration and returns its result.
func oneIteration(b *testing.B, g *Graph, t *Template, cfg dp.Config) dp.Result {
	b.Helper()
	e, err := dp.New(g, t, cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := e.Run(1)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1_Networks regenerates all ten Table I networks.
func BenchmarkTable1_Networks(b *testing.B) {
	for _, pre := range gen.Presets {
		pre := pre
		b.Run(pre.Name, func(b *testing.B) {
			scale := 0.05
			if pre.Paper.N > 500_000 {
				scale = 0.002
			}
			for i := 0; i < b.N; i++ {
				g := pre.Build(scale, int64(i))
				if g.N() == 0 {
					b.Fatal("empty network")
				}
			}
		})
	}
}

// BenchmarkFig3_UnlabeledTemplates measures single-iteration counting
// time per unlabeled template on the Portland-like network (Figure 3).
func BenchmarkFig3_UnlabeledTemplates(b *testing.B) {
	g := benchNet("portland", 0.002)
	for _, name := range tmpl.NamedTemplateNames {
		t := tmpl.MustNamed(name)
		if t.K() > 10 && testing.Short() {
			continue
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				oneIteration(b, g, t, benchCfg(int64(i)))
			}
		})
	}
}

// BenchmarkFig4_LabeledTemplates is Figure 3 with 8 vertex labels
// (Figure 4): dramatically faster per iteration.
func BenchmarkFig4_LabeledTemplates(b *testing.B) {
	g := benchNet("portland", 0.002)
	if g.Labels == nil {
		gen.AssignLabels(g, 8, 3)
	}
	for _, name := range tmpl.NamedTemplateNames {
		base := tmpl.MustNamed(name)
		labels := make([]int32, base.K())
		for i := range labels {
			labels[i] = int32((i*5 + 3) % 8)
		}
		t, err := base.WithLabels(name+"-lab", labels)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				oneIteration(b, g, t, benchCfg(int64(i)))
			}
		})
	}
}

// BenchmarkFig5_MotifTimes measures one motif-finding iteration over all
// k-vertex trees per PPI network (Figure 5).
func BenchmarkFig5_MotifTimes(b *testing.B) {
	for _, pre := range gen.PPIPresets() {
		g := benchNet(pre.Name, 0.5)
		for _, k := range []int{7, 10} {
			if k > 7 && testing.Short() {
				continue
			}
			b.Run(fmt.Sprintf("%s/k%d", pre.Name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := benchCfg(int64(i))
					if _, err := motif.Find(pre.Name, g, k, 1, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6_MemoryPortland reports peak dynamic-table MB for the
// U*-2 templates under naive vs improved vs labeled handling (Figure 6).
func BenchmarkFig6_MemoryPortland(b *testing.B) {
	g := benchNet("portland", 0.002)
	labeledG := benchNet("portland", 0.002)
	if labeledG.Labels == nil {
		gen.AssignLabels(labeledG, 8, 3)
	}
	for _, name := range []string{"U3-2", "U5-2", "U7-2", "U10-2"} {
		t := tmpl.MustNamed(name)
		for _, variant := range []string{"naive", "improved", "labeled"} {
			b.Run(name+"/"+variant, func(b *testing.B) {
				var peak int64
				for i := 0; i < b.N; i++ {
					cfg := benchCfg(int64(i))
					tpl := t
					gg := g
					switch variant {
					case "naive":
						cfg.TableKind = table.Naive
					case "improved":
						cfg.TableKind = table.Lazy
					case "labeled":
						cfg.TableKind = table.Lazy
						labels := make([]int32, t.K())
						for j := range labels {
							labels[j] = int32((j*5 + 3) % 8)
						}
						var err error
						tpl, err = t.WithLabels(name+"-lab", labels)
						if err != nil {
							b.Fatal(err)
						}
						gg = labeledG
					}
					res := oneIteration(b, gg, tpl, cfg)
					peak = res.PeakTableBytes
				}
				b.ReportMetric(float64(peak)/(1<<20), "peakMB")
			})
		}
	}
}

// BenchmarkFig7_MemoryRoad reports peak table MB for U*-1 path templates
// under hash vs naive vs improved layouts on the road network (Figure 7).
func BenchmarkFig7_MemoryRoad(b *testing.B) {
	g := benchNet("paroad", 0.01)
	kinds := []struct {
		name string
		kind table.Kind
	}{{"hash", table.Hash}, {"naive", table.Naive}, {"improved", table.Lazy}}
	for _, name := range []string{"U3-1", "U5-1", "U7-1", "U10-1"} {
		t := tmpl.MustNamed(name)
		for _, k := range kinds {
			b.Run(name+"/"+k.name, func(b *testing.B) {
				var peak int64
				for i := 0; i < b.N; i++ {
					cfg := benchCfg(int64(i))
					cfg.TableKind = k.kind
					res := oneIteration(b, g, t, cfg)
					peak = res.PeakTableBytes
				}
				b.ReportMetric(float64(peak)/(1<<20), "peakMB")
			})
		}
	}
}

// BenchmarkFig8_InnerScaling sweeps worker counts for inner-loop
// parallelism on a large template (Figure 8). On a single-core host this
// measures goroutine overhead, not speedup.
func BenchmarkFig8_InnerScaling(b *testing.B) {
	g := benchNet("portland", 0.002)
	t := tmpl.MustNamed("U10-2")
	for _, w := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(int64(i))
				cfg.Mode = dp.Inner
				cfg.Workers = w
				oneIteration(b, g, t, cfg)
			}
		})
	}
}

// BenchmarkFig9_InnerVsOuter compares the two parallelization modes on
// the Enron-like network with U7-2 (Figure 9).
func BenchmarkFig9_InnerVsOuter(b *testing.B) {
	g := benchNet("enron", 0.1)
	t := tmpl.MustNamed("U7-2")
	for _, w := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("inner/w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(int64(i))
				cfg.Mode = dp.Inner
				cfg.Workers = w
				oneIteration(b, g, t, cfg)
			}
		})
		b.Run(fmt.Sprintf("outer/w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(int64(i))
				cfg.Mode = dp.Outer
				cfg.Workers = w
				e, err := dp.New(g, t, cfg)
				if err != nil {
					b.Fatal(err)
				}
				// w concurrent iterations, as the figure plots.
				if _, err := e.Run(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10_ErrorEnron runs the error-vs-iterations experiment and
// reports the final relative error as a metric (Figure 10).
func BenchmarkFig10_ErrorEnron(b *testing.B) {
	g := benchNet("enron", 0.04)
	for _, name := range []string{"U3-1", "U5-1"} {
		t := tmpl.MustNamed(name)
		want := float64(exact.Count(g, t))
		b.Run(name, func(b *testing.B) {
			var relErr float64
			for i := 0; i < b.N; i++ {
				e, err := dp.New(g, t, benchCfg(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				res, err := e.Run(10)
				if err != nil {
					b.Fatal(err)
				}
				relErr = math.Abs(res.Estimate-want) / want
			}
			b.ReportMetric(relErr, "relErr@10")
		})
	}
}

// BenchmarkFig11_ErrorMotifs reports the mean motif error after 100
// iterations on the H. pylori-like network (Figure 11).
func BenchmarkFig11_ErrorMotifs(b *testing.B) {
	g := benchNet("hpylori", 0.2)
	enum, err := enumerate.CountAllTrees(g, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var merr float64
	for i := 0; i < b.N; i++ {
		prof, err := motif.Find("hpylori", g, 7, 100, benchCfg(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		merr, err = motif.MeanRelativeError(prof, enum.Counts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(merr, "meanRelErr@100")
}

// BenchmarkFig12_MotifCounts compares 1-iteration and 100-iteration motif
// estimates against exact counts (Figure 12).
func BenchmarkFig12_MotifCounts(b *testing.B) {
	g := benchNet("hpylori", 0.2)
	enum, err := enumerate.CountAllTrees(g, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, iters := range []int{1, 100} {
		b.Run(fmt.Sprintf("iters%d", iters), func(b *testing.B) {
			var merr float64
			for i := 0; i < b.N; i++ {
				prof, err := motif.Find("hpylori", g, 7, iters, benchCfg(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				merr, err = motif.MeanRelativeError(prof, enum.Counts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(merr, "meanRelErr")
		})
	}
}

// BenchmarkFig13_PPIProfiles times full motif-profile computation on the
// four PPI networks (Figure 13).
func BenchmarkFig13_PPIProfiles(b *testing.B) {
	for _, pre := range gen.PPIPresets() {
		g := benchNet(pre.Name, 0.3)
		b.Run(pre.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := motif.Find(pre.Name, g, 7, 10, benchCfg(int64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig14_SocialProfiles times motif profiles on the social, road,
// and random networks (Figure 14).
func BenchmarkFig14_SocialProfiles(b *testing.B) {
	nets := map[string]float64{"portland": 0.001, "slashdot": 0.05, "enron": 0.05, "paroad": 0.005, "gnp": 0.05}
	for _, name := range []string{"portland", "slashdot", "enron", "paroad", "gnp"} {
		g := benchNet(name, nets[name])
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := motif.Find(name, g, 7, 5, benchCfg(int64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig15_GDD times per-vertex graphlet-degree estimation for the
// U5-2 central orbit (Figure 15).
func BenchmarkFig15_GDD(b *testing.B) {
	t := tmpl.MustNamed("U5-2")
	orbit := 0 // degree-3 center by construction
	for _, name := range []string{"enron", "gnp", "portland", "slashdot"} {
		scale := 0.05
		if name == "portland" {
			scale = 0.001
		}
		g := benchNet(name, scale)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(int64(i))
				cfg.RootVertex = orbit
				e, err := dp.New(g, t, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := e.VertexCounts(5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig16_GDDAgreement reports GDD agreement against the exact
// distribution after 100 iterations (Figure 16).
func BenchmarkFig16_GDDAgreement(b *testing.B) {
	t := tmpl.MustNamed("U5-2")
	orbit := 0
	for _, name := range []string{"ecoli", "enron"} {
		scale := 0.3
		if name == "enron" {
			scale = 0.03
		}
		g := benchNet(name, scale)
		exactDist := ExactGraphletDegrees(g, t, orbit)
		b.Run(name, func(b *testing.B) {
			var agree float64
			for i := 0; i < b.N; i++ {
				est, err := GraphletDegrees(g, t, orbit, 100, DefaultOptions().WithSeed(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				agree = GDDAgreement(est, exactDist)
			}
			b.ReportMetric(agree, "agreement@100")
		})
	}
}

// BenchmarkModaComparison reproduces the §V-C three-way comparison on the
// circuit network: naive exhaustive counting per template, the MODA-style
// single-pass enumerator, and FASCIA at 100 iterations.
func BenchmarkModaComparison(b *testing.B) {
	g := benchNet("circuit", 1.0)
	trees := tmpl.AllTrees(7)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range trees {
				exact.Count(g, t)
			}
		}
	})
	b.Run("moda-style", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := enumerate.CountAllTrees(g, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fascia-100iter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := benchCfg(int64(i))
			cfg.Workers = 1
			if _, err := motif.Find("circuit", g, 7, 100, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPartition measures the one-at-a-time vs balanced
// partitioning trade-off with and without subtemplate sharing.
func BenchmarkAblationPartition(b *testing.B) {
	g := benchNet("enron", 0.1)
	t := tmpl.MustNamed("U10-2")
	for _, strat := range []part.Strategy{part.OneAtATime, part.Balanced} {
		for _, share := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/share=%v", strat, share), func(b *testing.B) {
				var peak int64
				for i := 0; i < b.N; i++ {
					cfg := benchCfg(int64(i))
					cfg.Strategy = strat
					cfg.Share = share
					res := oneIteration(b, g, t, cfg)
					peak = res.PeakTableBytes
				}
				b.ReportMetric(float64(peak)/(1<<20), "peakMB")
			})
		}
	}
}

// BenchmarkAblationTable measures the three table layouts on the road
// network.
func BenchmarkAblationTable(b *testing.B) {
	g := benchNet("paroad", 0.01)
	t := tmpl.MustNamed("U7-1")
	for _, kind := range table.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			var peak int64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(int64(i))
				cfg.TableKind = kind
				res := oneIteration(b, g, t, cfg)
				peak = res.PeakTableBytes
			}
			b.ReportMetric(float64(peak)/(1<<20), "peakMB")
		})
	}
}

// BenchmarkAblationLeafSpecial measures the single-vertex-child fast
// paths' effect on time (results are identical either way).
func BenchmarkAblationLeafSpecial(b *testing.B) {
	g := benchNet("enron", 0.1)
	t := tmpl.MustNamed("U7-1")
	for _, disable := range []bool{false, true} {
		b.Run("special="+strconv.FormatBool(!disable), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(int64(i))
				cfg.DisableLeafSpecial = disable
				oneIteration(b, g, t, cfg)
			}
		})
	}
}

// BenchmarkExperimentHarness smoke-times the full experiment harness at
// tiny scale (what cmd/fasciabench runs).
func BenchmarkExperimentHarness(b *testing.B) {
	p := experiments.Params{
		Scale: 0.05, SmallScale: 0.0008, ExactScale: 0.03,
		Seed: 1, Iters: 3, MaxK: 5, Threads: []int{1, 2},
	}
	for _, name := range []string{"table1", "fig3", "fig7", "moda"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Run(name, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributed measures the simulated distributed-memory runtime
// across rank counts, reporting communication volume (the paper's future
// work, PARSE/SAHAD direction).
func BenchmarkDistributed(b *testing.B) {
	g := benchNet("enron", 0.1)
	t := tmpl.MustNamed("U7-1")
	for _, ranks := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("ranks%d", ranks), func(b *testing.B) {
			var comm int64
			for i := 0; i < b.N; i++ {
				e, err := dist.New(g, t, dist.Config{Ranks: ranks, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				res, err := e.Run(1)
				if err != nil {
					b.Fatal(err)
				}
				comm = res.CommBytes
			}
			b.ReportMetric(float64(comm)/(1<<20), "commMB")
		})
	}
}
