package fascia

// Oracle-differential harness: every public counting entry point —
// Count, CountLabeled, CountConverged, CountDistributed — is checked on
// randomized small graphs (n <= 30, k <= 5) against the exhaustive
// internal/exact oracle within statistical tolerance, and every
// layout × kernel × batch × parallel-mode combination is checked for
// exact (bit-identical) agreement with the reference configuration
// under a fixed seed. Failures print the seed and full configuration so
// any disagreement is reproducible from the log line alone. The harness
// runs under -race in CI (`make difftest`).

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/exact"
)

// diffSeed bases every run in the harness; iteration i colors with
// diffSeed+i in every entry point, which is what makes cross-config
// bit-identity and prefix properties hold.
const diffSeed = 101

// refIters sizes the statistical reference run (tight CI against the
// exact count); comboIters sizes the per-combination bit-identity runs.
const (
	refIters   = 300
	comboIters = 24
)

type diffWorkload struct {
	gName string
	g     *Graph
	tName string
	t     *Template
}

// diffWorkloads returns the randomized small (graph, template) pairs the
// harness sweeps: Erdős–Rényi and Barabási–Albert graphs under 30
// vertices, trees up to 5 vertices including a branchy spider.
func diffWorkloads() []diffWorkload {
	er := ErdosRenyi(26, 70, 11)
	ba := BarabasiAlbert(24, 2, 12)
	spider := MustTemplate("U5-2")
	var out []diffWorkload
	for _, g := range []struct {
		name string
		g    *Graph
	}{{"er26", er}, {"ba24", ba}} {
		for _, tc := range []struct {
			name string
			t    *Template
		}{
			{"path3", PathTemplate(3)},
			{"star4", StarTemplate(4)},
			{"path5", PathTemplate(5)},
			{"u5-2", spider},
		} {
			out = append(out, diffWorkload{g.name, g.g, tc.name, tc.t})
		}
	}
	return out
}

// diffCombos enumerates every layout × kernel × batch × parallel-mode
// combination of the public options surface.
func diffCombos() []struct {
	name string
	opt  Options
} {
	var out []struct {
		name string
		opt  Options
	}
	for _, layout := range []TableLayout{TableLazy, TableNaive, TableHash, TableSuccinct} {
		for _, kernel := range []KernelChoice{KernelAuto, KernelDirect, KernelAggregate} {
			for _, batch := range []int{1, 4} {
				for _, mode := range []ParallelMode{ParallelInner, ParallelOuter, ParallelHybrid} {
					opt := DefaultOptions().
						WithTable(layout).WithKernel(kernel).WithBatch(batch).WithParallel(mode).
						WithSeed(diffSeed).WithIterations(comboIters)
					out = append(out, struct {
						name string
						opt  Options
					}{
						fmt.Sprintf("layout=%s kernel=%s batch=%d parallel=%s", layout, kernel, batch, mode),
						opt,
					})
				}
			}
		}
	}
	return out
}

// assertOracle checks a run's estimate against the exact count within
// statistical tolerance: 6 standard errors (deterministic under the
// fixed seed — any failure here is a genuine bias, not noise).
func assertOracle(t *testing.T, desc string, res Result, exactCount int64) {
	t.Helper()
	diff := math.Abs(res.Count - float64(exactCount))
	tol := 6*res.StdErr + 1e-9 + 1e-12*float64(exactCount)
	if diff > tol {
		t.Errorf("ORACLE DISAGREEMENT %s seed=%d: estimate %v over %d iterations vs exact %d (|diff| %g > 6σ tolerance %g)",
			desc, diffSeed, res.Count, res.Iterations, exactCount, diff, tol)
	}
}

// refRun executes the reference configuration (paper defaults) for the
// workload: refIters iterations at diffSeed.
func refRun(t *testing.T, w diffWorkload) Result {
	t.Helper()
	res, err := Count(w.g, w.t, DefaultOptions().WithIterations(refIters).WithSeed(diffSeed))
	if err != nil {
		t.Fatalf("reference run %s/%s seed=%d: %v", w.gName, w.tName, diffSeed, err)
	}
	return res
}

// TestOracleDifferentialCount checks Count against the exact oracle and
// every option combination against the reference run, bit for bit.
func TestOracleDifferentialCount(t *testing.T) {
	combos := diffCombos()
	for _, w := range diffWorkloads() {
		w := w
		t.Run(w.gName+"/"+w.tName, func(t *testing.T) {
			exactCount := exact.Count(w.g, w.t)
			if exactCount <= 0 {
				t.Fatalf("degenerate workload %s/%s: exact count %d", w.gName, w.tName, exactCount)
			}
			ref := refRun(t, w)
			assertOracle(t, fmt.Sprintf("Count graph=%s tmpl=%s config=defaults", w.gName, w.tName), ref, exactCount)

			for _, c := range combos {
				res, err := Count(w.g, w.t, c.opt)
				if err != nil {
					t.Fatalf("%s seed=%d: %v", c.name, diffSeed, err)
				}
				if len(res.PerIteration) != comboIters {
					t.Fatalf("%s seed=%d: %d iterations, want %d", c.name, diffSeed, len(res.PerIteration), comboIters)
				}
				for i, x := range res.PerIteration {
					if x != ref.PerIteration[i] {
						t.Fatalf("EXACTNESS DISAGREEMENT graph=%s tmpl=%s %s seed=%d iteration=%d: %v != reference %v",
							w.gName, w.tName, c.name, diffSeed, i, x, ref.PerIteration[i])
					}
				}
			}
		})
	}
}

// TestOracleDifferentialConverged checks CountConverged: its iterations
// are a bit-identical prefix of the fixed-run seed stream, its stopping
// rule is honored, and its estimate agrees with the oracle within its
// own confidence interval.
func TestOracleDifferentialConverged(t *testing.T) {
	const relStdErr = 0.2
	for _, w := range diffWorkloads() {
		w := w
		t.Run(w.gName+"/"+w.tName, func(t *testing.T) {
			exactCount := exact.Count(w.g, w.t)
			ref := refRun(t, w)
			// Options.Iterations doubles as the convergence floor: a
			// 2-sample standard error is too noisy to stop (or to test)
			// on, so require at least 20 iterations before the stopping
			// rule may fire.
			const minIters = 20
			res, err := CountConverged(w.g, w.t, relStdErr, refIters, DefaultOptions().WithSeed(diffSeed).WithIterations(minIters))
			if err != nil {
				t.Fatalf("CountConverged graph=%s tmpl=%s seed=%d: %v", w.gName, w.tName, diffSeed, err)
			}
			if len(res.PerIteration) < minIters || len(res.PerIteration) > refIters {
				t.Fatalf("converged run used %d iterations (bounds [%d, %d])", len(res.PerIteration), minIters, refIters)
			}
			for i, x := range res.PerIteration {
				if x != ref.PerIteration[i] {
					t.Fatalf("EXACTNESS DISAGREEMENT CountConverged graph=%s tmpl=%s seed=%d iteration=%d: %v != reference %v",
						w.gName, w.tName, diffSeed, i, x, ref.PerIteration[i])
				}
			}
			if n := len(res.PerIteration); n < refIters && res.Count != 0 && res.StdErr/math.Abs(res.Count) > relStdErr {
				t.Errorf("converged run stopped at %d iterations with rel stderr %v > %v",
					n, res.StdErr/math.Abs(res.Count), relStdErr)
			}
			assertOracle(t, fmt.Sprintf("CountConverged graph=%s tmpl=%s", w.gName, w.tName), res, exactCount)
		})
	}
}

// TestOracleDifferentialAdaptive checks Options.Adaptive across the
// full layout × kernel × batch × parallel-mode matrix: every adaptive
// run's PerIteration stream must be a bit-identical prefix of the
// fixed-run seed stream, and — because the per-iteration estimates are
// bit-identical across combinations — every combination must stop at
// exactly the same iteration count.
func TestOracleDifferentialAdaptive(t *testing.T) {
	const relStdErr = 0.2
	for _, w := range diffWorkloads() {
		w := w
		t.Run(w.gName+"/"+w.tName, func(t *testing.T) {
			ref := refRun(t, w)
			stop := -1
			for _, c := range diffCombos() {
				res, err := Count(w.g, w.t, c.opt.WithAdaptive(relStdErr).WithIterations(refIters))
				if err != nil {
					t.Fatalf("adaptive %s seed=%d: %v", c.name, diffSeed, err)
				}
				n := len(res.PerIteration)
				if n < 2 || n > refIters {
					t.Fatalf("adaptive %s: stopped at %d iterations (bounds [2, %d])", c.name, n, refIters)
				}
				if stop < 0 {
					stop = n
				} else if n != stop {
					t.Fatalf("STOPPING DISAGREEMENT adaptive %s seed=%d: stopped at %d iterations, other combinations at %d",
						c.name, diffSeed, n, stop)
				}
				for i, x := range res.PerIteration {
					if x != ref.PerIteration[i] {
						t.Fatalf("EXACTNESS DISAGREEMENT adaptive %s seed=%d iteration=%d: %v != reference %v",
							c.name, diffSeed, i, x, ref.PerIteration[i])
					}
				}
				if n < refIters && res.Count != 0 && res.StdErr/math.Abs(res.Count) > relStdErr {
					t.Fatalf("adaptive %s stopped at %d iterations with rel stderr %v > %v",
						c.name, n, res.StdErr/math.Abs(res.Count), relStdErr)
				}
			}
		})
	}
}

// TestOracleDifferentialLabeled checks CountLabeled against the exact
// oracle on a labeled graph (labels participate in both the DP and the
// backtracking), plus bit-identity across every option combination.
func TestOracleDifferentialLabeled(t *testing.T) {
	g := AssignRandomLabels(ErdosRenyi(30, 90, 13), 2, 14)
	base := PathTemplate(4)
	lt, err := base.WithLabels("lp4", []int32{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	exactCount := exact.Count(g, lt)
	if exactCount <= 0 {
		t.Fatalf("degenerate labeled workload: exact count %d", exactCount)
	}
	ref, err := CountLabeled(g, lt, DefaultOptions().WithIterations(refIters).WithSeed(diffSeed))
	if err != nil {
		t.Fatal(err)
	}
	assertOracle(t, "CountLabeled graph=er30x2labels tmpl=lp4", ref, exactCount)

	for _, c := range diffCombos() {
		res, err := CountLabeled(g, lt, c.opt)
		if err != nil {
			t.Fatalf("labeled %s seed=%d: %v", c.name, diffSeed, err)
		}
		for i, x := range res.PerIteration {
			if x != ref.PerIteration[i] {
				t.Fatalf("EXACTNESS DISAGREEMENT CountLabeled %s seed=%d iteration=%d: %v != reference %v",
					c.name, diffSeed, i, x, ref.PerIteration[i])
			}
		}
	}

	// Guard rails: unlabeled inputs are rejected loudly.
	if _, err := CountLabeled(g, base, DefaultOptions()); err == nil {
		t.Error("CountLabeled accepted an unlabeled template")
	}
	if _, err := CountLabeled(ErdosRenyi(30, 90, 13), lt, DefaultOptions()); err == nil {
		t.Error("CountLabeled accepted an unlabeled graph")
	}
}

// TestOracleDifferentialDistributed checks the simulated
// distributed-memory engine on 2–4 ranks: per-iteration estimates are
// bit-identical to the shared-memory engine under the same seed, so the
// oracle agreement follows from the shared-memory checks — asserted
// directly here anyway.
func TestOracleDifferentialDistributed(t *testing.T) {
	for _, w := range diffWorkloads() {
		w := w
		t.Run(w.gName+"/"+w.tName, func(t *testing.T) {
			if exactCount := exact.Count(w.g, w.t); exactCount <= 0 {
				t.Fatalf("degenerate workload: exact count %d", exactCount)
			}
			ref := refRun(t, w)
			for ranks := 2; ranks <= 4; ranks++ {
				res, err := CountDistributed(w.g, w.t, ranks, DefaultOptions().WithIterations(comboIters).WithSeed(diffSeed))
				if err != nil {
					t.Fatalf("CountDistributed ranks=%d graph=%s tmpl=%s seed=%d: %v", ranks, w.gName, w.tName, diffSeed, err)
				}
				if len(res.PerIteration) != comboIters {
					t.Fatalf("ranks=%d: %d iterations, want %d", ranks, len(res.PerIteration), comboIters)
				}
				for i, x := range res.PerIteration {
					if x != ref.PerIteration[i] {
						t.Fatalf("EXACTNESS DISAGREEMENT CountDistributed ranks=%d graph=%s tmpl=%s seed=%d iteration=%d: %v != shared-memory %v",
							ranks, w.gName, w.tName, diffSeed, i, x, ref.PerIteration[i])
					}
				}
			}
		})
	}
}

// nonTreeDiffWorkloads returns the non-tree sweep: small but dense
// random graphs crossed with the full size-3/4 motif zoo's non-tree
// members. The graphs are dense enough that every motif — including
// K4 — occurs, so a zero exact count marks a harness bug.
func nonTreeDiffWorkloads() []diffWorkload {
	er := ErdosRenyi(22, 90, 11)
	ba := BarabasiAlbert(20, 4, 12)
	var out []diffWorkload
	for _, g := range []struct {
		name string
		g    *Graph
	}{{"er22", er}, {"ba20", ba}} {
		for _, name := range []string{"triangle", "c4", "diamond", "tailed-triangle", "k4"} {
			tp, err := MotifZooTemplate(name)
			if err != nil {
				panic(err)
			}
			out = append(out, diffWorkload{g.name, g.g, name, tp})
		}
	}
	return out
}

// TestOracleDifferentialNonTreeMatrix is the three-way matrix for
// non-tree templates: the direct combinatorial motif counter must agree
// EXACTLY with exhaustive backtracking, and the tree-decomposition bag
// DP's estimate must land within 6σ of that exact count — across every
// layout × kernel × batch × parallel-mode combination, each of which
// must be bit-identical to the reference run (the bag DP ignores those
// knobs, and this pins that ignoring them never perturbs an estimate).
func TestOracleDifferentialNonTreeMatrix(t *testing.T) {
	combos := diffCombos()
	for _, w := range nonTreeDiffWorkloads() {
		w := w
		t.Run(w.gName+"/"+w.tName, func(t *testing.T) {
			motifCount, err := ExactMotifCount(w.g, w.tName)
			if err != nil {
				t.Fatal(err)
			}
			bruteCount := exact.Count(w.g, w.t)
			if motifCount != bruteCount {
				t.Fatalf("EXACT ORACLE DISAGREEMENT graph=%s motif=%s: combinatorial counter %d != backtracking %d",
					w.gName, w.tName, motifCount, bruteCount)
			}
			if motifCount <= 0 {
				t.Fatalf("degenerate workload %s/%s: exact count %d", w.gName, w.tName, motifCount)
			}
			ref := refRun(t, w)
			assertOracle(t, fmt.Sprintf("Count graph=%s tmpl=%s config=defaults", w.gName, w.tName), ref, motifCount)

			for _, c := range combos {
				res, err := Count(w.g, w.t, c.opt)
				if err != nil {
					t.Fatalf("%s seed=%d: %v", c.name, diffSeed, err)
				}
				if len(res.PerIteration) != comboIters {
					t.Fatalf("%s seed=%d: %d iterations, want %d", c.name, diffSeed, len(res.PerIteration), comboIters)
				}
				for i, x := range res.PerIteration {
					if x != ref.PerIteration[i] {
						t.Fatalf("EXACTNESS DISAGREEMENT graph=%s tmpl=%s %s seed=%d iteration=%d: %v != reference %v",
							w.gName, w.tName, c.name, diffSeed, i, x, ref.PerIteration[i])
					}
				}
			}
		})
	}
}

// TestOracleDifferentialNonTreeColorfulExact is the zero-noise non-tree
// oracle: under deterministic colorings the bag DP's raw colorful total
// must equal brute-force rainbow enumeration exactly — no tolerance.
// This pins the decomposition DP itself, independent of scaling and of
// the closed-form motif counters.
func TestOracleDifferentialNonTreeColorfulExact(t *testing.T) {
	workloads := nonTreeDiffWorkloads()
	// A 5-cycle exercises a decomposition with no closed-form oracle.
	c5, err := CycleTemplate(5)
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, diffWorkload{"er22", ErdosRenyi(22, 90, 11), "c5", c5})
	for _, w := range workloads {
		w := w
		t.Run(w.gName+"/"+w.tName, func(t *testing.T) {
			e, err := NewEngine(w.g, w.t, DefaultOptions().WithSeed(diffSeed))
			if err != nil {
				t.Fatal(err)
			}
			for s := int64(diffSeed); s < diffSeed+5; s++ {
				got := e.inner.ColorfulTotal(s)
				want := exact.CountColorfulMappings(w.g, w.t, e.inner.ColoringFor(s))
				if got != float64(want) {
					t.Fatalf("COLORFUL DISAGREEMENT graph=%s tmpl=%s seed=%d: bag DP total %v != exact %d",
						w.gName, w.tName, s, got, want)
				}
			}
		})
	}
}

// TestOracleDifferentialColorfulExact is the zero-noise oracle: under a
// deterministic coloring, the DP's raw colorful total must equal the
// brute-force count of rainbow mappings exactly — no statistical
// tolerance at all. This pins the DP itself, independent of scaling.
func TestOracleDifferentialColorfulExact(t *testing.T) {
	for _, w := range diffWorkloads() {
		w := w
		t.Run(w.gName+"/"+w.tName, func(t *testing.T) {
			e, err := NewEngine(w.g, w.t, DefaultOptions().WithSeed(diffSeed))
			if err != nil {
				t.Fatal(err)
			}
			for s := int64(diffSeed); s < diffSeed+5; s++ {
				got := e.inner.ColorfulTotal(s)
				want := exact.CountColorfulMappings(w.g, w.t, e.inner.ColoringFor(s))
				if got != float64(want) {
					t.Fatalf("COLORFUL DISAGREEMENT graph=%s tmpl=%s seed=%d: DP total %v != exact %d",
						w.gName, w.tName, s, got, want)
				}
			}
		})
	}
}
