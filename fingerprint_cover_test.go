package fascia

import (
	"reflect"
	"testing"
)

// mutateField perturbs one Options field away from its current value,
// returning false for kinds the test does not know how to mutate (a new
// field of a new kind must teach this helper before it can ship).
func mutateField(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1.5)
	case reflect.Func:
		v.Set(reflect.MakeFunc(v.Type(), func([]reflect.Value) []reflect.Value { return nil }))
	default:
		return false
	}
	return true
}

// TestFingerprintCoversAllOptions is the runtime twin of fasciavet's
// fingerprintcover analyzer: it re-checks via reflection that every
// Options field is classified in exactly one of the three in-source
// lists, and then proves the classification is behaviorally true —
// mutating a result-relevant field changes Fingerprint(), mutating an
// execution-only or lifecycle field does not. The static analyzer pins
// the source-level contract (lists vs struct vs Fingerprint body); this
// test pins the runtime one, so the cache-key invariant holds even when
// fasciavet is skipped.
func TestFingerprintCoversAllOptions(t *testing.T) {
	typ := reflect.TypeOf(Options{})

	lists := []struct {
		name  string
		names []string
	}{
		{"fingerprintResultFields", fingerprintResultFields},
		{"fingerprintExecutionOnly", fingerprintExecutionOnly},
		{"fingerprintLifecycle", fingerprintLifecycle},
	}
	class := map[string]string{}
	for _, l := range lists {
		for _, n := range l.names {
			if prev, dup := class[n]; dup {
				t.Errorf("Options field %q classified in both %s and %s", n, prev, l.name)
				continue
			}
			class[n] = l.name
			if _, ok := typ.FieldByName(n); !ok {
				t.Errorf("%s names %q, which is not a field of Options (stale entry)", l.name, n)
			}
		}
	}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Anonymous {
			t.Errorf("embedded field %s in Options cannot be classified; name it explicitly", f.Name)
			continue
		}
		if _, ok := class[f.Name]; !ok {
			t.Errorf("Options field %q is not classified as result-relevant, execution-only, or lifecycle", f.Name)
		}
	}

	base := DefaultOptions()
	baseFP := base.Fingerprint()
	if again := DefaultOptions().Fingerprint(); again != baseFP {
		t.Fatalf("Fingerprint is not deterministic: %q vs %q", baseFP, again)
	}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		o := DefaultOptions()
		if !mutateField(reflect.ValueOf(&o).Elem().Field(i)) {
			t.Errorf("don't know how to mutate Options field %s (%s); teach mutateField so the twin test keeps covering it", f.Name, f.Type)
			continue
		}
		changed := o.Fingerprint() != baseFP
		wantChange := class[f.Name] == "fingerprintResultFields"
		switch {
		case wantChange && !changed:
			t.Errorf("Options field %s is declared result-relevant but mutating it does not change Fingerprint(); the cache would conflate distinct queries", f.Name)
		case !wantChange && changed:
			t.Errorf("Options field %s is declared %s but mutating it changes Fingerprint() (%q -> %q); either reclassify it or the cache will fragment", f.Name, class[f.Name], baseFP, o.Fingerprint())
		}
	}
}
