package fascia

import (
	"repro/internal/directed"
	"repro/internal/part"
)

// DiGraph is a directed graph with out- and in-adjacency (dual CSR).
type DiGraph = directed.DiGraph

// DiTemplate is a directed tree template: a tree skeleton with an
// orientation on every edge.
type DiTemplate = directed.DiTemplate

// NewDiGraph builds a directed graph over n vertices from (from, to)
// arcs; duplicates and self-loops are dropped.
func NewDiGraph(n int, arcs [][2]int32) (*DiGraph, error) {
	return directed.FromArcs(n, arcs)
}

// RandomDiGraph generates a seeded uniform random digraph.
func RandomDiGraph(n int, arcs int64, seed int64) *DiGraph {
	return directed.RandomDiGraph(n, arcs, seed)
}

// NewDiTemplate builds a directed tree template from arcs whose
// underlying edges form a tree on k vertices.
func NewDiTemplate(name string, k int, arcs [][2]int) (*DiTemplate, error) {
	return directed.NewDiTemplate(name, k, arcs)
}

// DiPathTemplate returns the directed path 0→1→…→k-1.
func DiPathTemplate(k int) *DiTemplate { return directed.DiPath(k) }

// DiStarOutTemplate returns the out-star (center 0, arcs to leaves).
func DiStarOutTemplate(k int) *DiTemplate { return directed.DiStarOut(k) }

// DiStarInTemplate returns the in-star (arcs from leaves into center 0).
func DiStarInTemplate(k int) *DiTemplate { return directed.DiStarIn(k) }

// CountDirected estimates the number of non-induced direction-preserving
// occurrences of the directed tree template t in g — the directed variant
// of color coding the paper notes as possible but does not analyze
// (§II-C). Iterations, seed, colors and partition strategy come from opt;
// table layout and parallel-mode options do not apply.
func CountDirected(g *DiGraph, t *DiTemplate, opt Options) (Result, error) {
	strat := part.OneAtATime
	if opt.Partition == PartitionBalanced {
		strat = part.Balanced
	}
	e, err := directed.New(g, t, directed.Config{
		Colors:   opt.Colors,
		Strategy: strat,
		Seed:     opt.Seed,
	})
	if err != nil {
		return Result{}, err
	}
	res, err := e.Run(opt.iterations(t.K()))
	if err != nil {
		return Result{}, err
	}
	return Result{
		Count:        res.Estimate,
		PerIteration: res.PerIteration,
		Iterations:   len(res.PerIteration),
	}, nil
}

// ExactCountDirected returns the exact directed occurrence count by
// exhaustive backtracking (exponential; small graphs only).
func ExactCountDirected(g *DiGraph, t *DiTemplate) int64 {
	return directed.Count(g, t)
}
